// Tests for the serve subsystem: JSON wire format, request
// canonicalization, the sharded LRU result cache, the SweepService
// (hit-equals-miss bit-equality, single-flight, concurrent-client
// determinism — the TSan job runs Serve*), warm worker state, and the
// stream/socket front ends.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "smilab/net/network.h"
#include "smilab/serve/request.h"
#include "smilab/serve/result_cache.h"
#include "smilab/serve/server.h"
#include "smilab/serve/service.h"
#include "smilab/serve/wire.h"

namespace smilab::serve {
namespace {

// --- Wire format ------------------------------------------------------------

TEST(ServeWire, ParsesScalarsObjectsAndArrays) {
  std::string error;
  const auto v = parse_json(
      R"( {"a": 1.5, "b": [true, null, "x\n\"y"], "neg": -3} )", &error);
  ASSERT_TRUE(v.has_value()) << error;
  ASSERT_EQ(v->type, JsonValue::Type::kObject);
  ASSERT_EQ(v->members.size(), 3u);
  EXPECT_EQ(v->members[0].first, "a");  // wire order preserved
  EXPECT_EQ(v->find("a")->number, 1.5);
  const JsonValue* b = v->find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->elements.size(), 3u);
  EXPECT_TRUE(b->elements[0].boolean);
  EXPECT_EQ(b->elements[1].type, JsonValue::Type::kNull);
  EXPECT_EQ(b->elements[2].string, "x\n\"y");
  EXPECT_EQ(v->find("neg")->as_int(-10, 10).value_or(99), -3);
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(ServeWire, RejectsMalformedDocuments) {
  std::string error;
  for (const char* bad :
       {"", "{", "{\"a\":}", "[1,]", "{\"a\":1}extra", "\"unterminated",
        "{\"a\" 1}", "nul", "1e999", "{\"a\":\"\\q\"}"}) {
    EXPECT_FALSE(parse_json(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(ServeWire, AsIntRejectsFractionsAndOutOfRange) {
  std::string error;
  const auto v = parse_json(R"({"f": 1.5, "big": 4096})", &error);
  ASSERT_TRUE(v.has_value());
  EXPECT_FALSE(v->find("f")->as_int(0, 10).has_value());
  EXPECT_FALSE(v->find("big")->as_int(0, 10).has_value());
  EXPECT_TRUE(v->find("big")->as_int(0, 1 << 20).has_value());
}

TEST(ServeWire, WriterRoundTripsDoublesExactly) {
  JsonWriter w;
  w.begin_object();
  w.field("x", 0.013652880000000001);
  w.field("s", "a\"b\\c\n");
  w.end_object();
  const std::string text = w.take();
  std::string error;
  const auto v = parse_json(text, &error);
  ASSERT_TRUE(v.has_value()) << text << ": " << error;
  EXPECT_EQ(v->find("x")->number, 0.013652880000000001);  // %.17g round-trip
  EXPECT_EQ(v->find("s")->string, "a\"b\\c\n");
}

// --- Request canonicalization ----------------------------------------------

ExperimentRequest parse_ok(const std::string& json) {
  std::string error;
  const auto doc = parse_json(json, &error);
  EXPECT_TRUE(doc.has_value()) << error;
  const auto req = ExperimentRequest::parse(*doc, &error);
  EXPECT_TRUE(req.has_value()) << json << ": " << error;
  return req.value_or(ExperimentRequest{});
}

std::string parse_error(const std::string& json) {
  std::string error;
  const auto doc = parse_json(json, &error);
  EXPECT_TRUE(doc.has_value()) << error;
  const auto req = ExperimentRequest::parse(*doc, &error);
  EXPECT_FALSE(req.has_value()) << json;
  return error;
}

TEST(ServeRequest, SemanticallyEqualConfigsCollide) {
  // Key order, whitespace, and spelled-out defaults must not split keys.
  const auto a = parse_ok(
      R"({"experiment":"ring","nodes":3,"iters":20,"bytes":1024,"seed":7})");
  const auto b = parse_ok(
      R"({ "iters": 20, "bytes": 1024, "seed": 7,
           "experiment": "ring", "nodes": 3, "smi": "long",
           "gap_ms": 1000 })");
  EXPECT_EQ(a.canonical_key(), b.canonical_key());
  EXPECT_EQ(a.canonical_json(), b.canonical_json());
}

TEST(ServeRequest, DistinctConfigsGetDistinctKeys) {
  const char* variants[] = {
      R"({"experiment":"ring"})",
      R"({"experiment":"ring","nodes":5})",
      R"({"experiment":"ring","iters":100})",
      R"({"experiment":"ring","bytes":64})",
      R"({"experiment":"ring","seed":2})",
      R"({"experiment":"ring","smi":"short"})",
      R"({"experiment":"ring","smi":"none"})",
      R"({"experiment":"ring","gap_ms":500})",
      R"({"experiment":"nas"})",
      R"({"experiment":"nas","workload":"ft","nodes":4})",
      R"({"experiment":"convolve"})",
      R"({"experiment":"convolve","case":"cf"})",
      R"({"experiment":"unixbench"})",
      R"({"experiment":"unixbench","cpus":4})",
  };
  std::vector<std::uint64_t> keys;
  for (const char* v : variants) keys.push_back(parse_ok(v).canonical_key());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_NE(keys[i], keys[j])
          << variants[i] << " vs " << variants[j];
    }
  }
}

TEST(ServeRequest, GapIsFoldedWhenSmisAreOff) {
  // With smi=none the gap is dead configuration: both must hit one entry.
  const auto a = parse_ok(R"({"experiment":"ring","smi":"none"})");
  const auto b = parse_ok(
      R"({"experiment":"ring","smi":"none","gap_ms":50})");
  EXPECT_EQ(a.canonical_key(), b.canonical_key());
}

TEST(ServeRequest, UnknownAndCrossKindFieldsAreRejected) {
  EXPECT_NE(parse_error(R"({"experiment":"ring","nodez":3})").find("nodez"),
            std::string::npos);
  // A nas-only field on a ring request is unknown, not silently ignored.
  EXPECT_NE(parse_error(R"({"experiment":"ring","htt":true})").find("htt"),
            std::string::npos);
  EXPECT_FALSE(parse_error(R"({"experiment":"warp"})").empty());
  EXPECT_FALSE(parse_error(R"({"nodes":3})").empty());  // missing kind
  EXPECT_FALSE(parse_error(R"({"experiment":"ring","nodes":1})").empty());
  EXPECT_FALSE(
      parse_error(R"({"experiment":"ring","iters":2.5})").empty());
  EXPECT_FALSE(
      parse_error(R"({"experiment":"nas","workload":"bt","nodes":2})")
          .empty());  // BT needs a square rank count
}

TEST(ServeRequest, ControlOpsParse) {
  std::string error;
  const auto stats = parse_request_line(R"({"op":"stats"})", &error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->op, RequestLine::Op::kStats);
  const auto ping = parse_request_line(R"({"op":"ping"})", &error);
  ASSERT_TRUE(ping.has_value()) << error;
  EXPECT_EQ(ping->op, RequestLine::Op::kPing);
  EXPECT_FALSE(parse_request_line(R"({"op":"dance"})", &error).has_value());
  EXPECT_FALSE(
      parse_request_line(R"({"op":"stats","x":1})", &error).has_value());
}

// --- Result cache -----------------------------------------------------------

TEST(ServeCache, LookupReturnsInsertedBytes) {
  ResultCache cache{1 << 20, 4};
  EXPECT_EQ(cache.lookup(42), nullptr);
  cache.insert(42, "payload-42");
  const auto hit = cache.lookup(42);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "payload-42");
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.insertions, 1);
  EXPECT_EQ(s.entries, 1);
  EXPECT_EQ(s.bytes, 10);
}

TEST(ServeCache, FirstWriteWinsOnDuplicateInsert) {
  ResultCache cache{1 << 20, 1};
  const auto first = cache.insert(7, "first");
  const auto second = cache.insert(7, "second");
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(*cache.lookup(7), "first");
  EXPECT_EQ(cache.stats().entries, 1);
}

TEST(ServeCache, TinyBudgetEvictsLeastRecentlyUsed) {
  // One shard, budget for ~2 of the 10-byte payloads.
  ResultCache cache{20, 1};
  cache.insert(1, std::string(10, 'a'));
  cache.insert(2, std::string(10, 'b'));
  ASSERT_NE(cache.lookup(1), nullptr);  // refresh 1: LRU order is now 1, 2
  cache.insert(3, std::string(10, 'c'));
  EXPECT_EQ(cache.lookup(2), nullptr);  // 2 was coldest -> evicted
  EXPECT_NE(cache.lookup(1), nullptr);
  EXPECT_NE(cache.lookup(3), nullptr);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.entries, 2);
  EXPECT_LE(s.bytes, 20);
}

TEST(ServeCache, SoleOversizedEntryIsRetained) {
  ResultCache cache{4, 1};  // budget smaller than any payload
  cache.insert(1, std::string(100, 'x'));
  EXPECT_NE(cache.lookup(1), nullptr);  // never evict down to empty
  cache.insert(2, std::string(100, 'y'));
  EXPECT_NE(cache.lookup(2), nullptr);
  EXPECT_EQ(cache.lookup(1), nullptr);  // but one oversized evicts another
  EXPECT_EQ(cache.stats().entries, 1);
}

TEST(ServeCache, EvictedEntryStaysAliveForHolders) {
  ResultCache cache{4, 1};
  const auto held = cache.insert(1, "still-here");
  cache.insert(2, std::string(50, 'z'));  // evicts key 1
  EXPECT_EQ(cache.lookup(1), nullptr);
  EXPECT_EQ(*held, "still-here");  // shared_ptr keeps the bytes alive
}

// --- Service ----------------------------------------------------------------

ExperimentRequest small_ring(std::uint64_t seed = 11) {
  ExperimentRequest req;
  req.kind = ExperimentKind::kRing;
  req.ring_nodes = 3;
  req.ring_iters = 10;
  req.ring_bytes = 2048;
  req.smi = SmiKind::kLong;
  req.gap_ms = 1000;
  req.seed = seed;
  return req;
}

TEST(ServeService, HitEqualsMissBitEquality) {
  ServiceConfig cfg;
  cfg.workers = 2;
  SweepService service{cfg};
  const auto miss = service.serve(small_ring());
  ASSERT_TRUE(miss.ok) << miss.error;
  EXPECT_FALSE(miss.cached);
  const auto hit = service.serve(small_ring());
  ASSERT_TRUE(hit.ok);
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(*miss.payload, *hit.payload);       // bit-identical bytes
  EXPECT_EQ(miss.payload.get(), hit.payload.get());  // same resident entry
  EXPECT_EQ(miss.key, hit.key);
  // And both equal a from-scratch computation on this thread (the cached
  // bytes are exactly what a fresh simulation renders).
  EXPECT_EQ(*hit.payload, run_experiment_payload(small_ring()));
}

TEST(ServeService, DistinctSeedsMissIndependently) {
  ServiceConfig cfg;
  cfg.workers = 2;
  SweepService service{cfg};
  const auto a = service.serve(small_ring(1));
  const auto b = service.serve(small_ring(2));
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_FALSE(a.cached);
  EXPECT_FALSE(b.cached);
  EXPECT_NE(a.key, b.key);
  EXPECT_EQ(service.stats().simulations, 2);
}

TEST(ServeService, TinyBudgetEvictionForcesResimulation) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_bytes = 1;  // every shard holds at most its newest entry
  cfg.cache_shards = 1;
  SweepService service{cfg};
  ASSERT_FALSE(service.serve(small_ring(1)).cached);
  EXPECT_TRUE(service.serve(small_ring(1)).cached);  // sole entry retained
  ASSERT_FALSE(service.serve(small_ring(2)).cached);  // evicts seed 1
  const auto again = service.serve(small_ring(1));
  EXPECT_FALSE(again.cached);  // genuinely re-simulated
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(service.stats().cache.evictions, 2);
  EXPECT_EQ(service.stats().simulations, 3);
}

TEST(ServeService, ConcurrentClientsGetIdenticalBytes) {
  // Many clients, two distinct keys, hammered concurrently: every response
  // for a key must carry the same bytes, and single-flight must coalesce
  // the duplicate misses (run under TSan in CI).
  ServiceConfig cfg;
  cfg.workers = 4;
  SweepService service{cfg};
  constexpr int kThreads = 8;
  constexpr int kRounds = 4;
  std::vector<std::string> bytes_by_seed[2];
  std::mutex mu;
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        const int which = (t + r) % 2;
        const auto served =
            service.serve(small_ring(static_cast<std::uint64_t>(which)));
        ASSERT_TRUE(served.ok) << served.error;
        const std::lock_guard<std::mutex> lock{mu};
        bytes_by_seed[which].push_back(*served.payload);
      }
    });
  }
  for (auto& c : clients) c.join();
  for (const auto& all : bytes_by_seed) {
    ASSERT_FALSE(all.empty());
    for (const auto& b : all) EXPECT_EQ(b, all.front());
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, kThreads * kRounds);
  EXPECT_EQ(stats.simulations, 2);  // one per key, everything else reused
  EXPECT_EQ(stats.errors, 0);
}

TEST(ServeService, ServeLineEnvelopesAndErrors) {
  ServiceConfig cfg;
  cfg.workers = 1;
  SweepService service{cfg};
  const std::string ok = service.serve_line(
      R"({"experiment":"ring","nodes":3,"iters":5,"bytes":256,"seed":3})");
  EXPECT_NE(ok.find(R"("ok":true)"), std::string::npos) << ok;
  EXPECT_NE(ok.find(R"("cached":false)"), std::string::npos) << ok;
  EXPECT_NE(ok.find(R"("result":{"elapsed_s":)"), std::string::npos) << ok;

  const std::string bad = service.serve_line("this is not json");
  EXPECT_NE(bad.find(R"("ok":false)"), std::string::npos) << bad;
  const std::string unknown =
      service.serve_line(R"({"experiment":"ring","warp":9})");
  EXPECT_NE(unknown.find("warp"), std::string::npos) << unknown;
  EXPECT_EQ(service.serve_line(R"({"op":"ping"})"),
            R"({"ok":true,"op":"ping"})");
  const std::string stats = service.serve_line(R"({"op":"stats"})");
  EXPECT_NE(stats.find(R"("op":"stats")"), std::string::npos) << stats;
  EXPECT_NE(stats.find(R"("cache_byte_budget")"), std::string::npos) << stats;
}

TEST(ServeService, NasRequestServesAndCaches) {
  ServiceConfig cfg;
  cfg.workers = 2;
  SweepService service{cfg};
  ExperimentRequest req;
  req.kind = ExperimentKind::kNas;
  req.nas = NasJobSpec{NasBenchmark::kEP, NasClass::kA, 2, 1};
  req.nas_trials = 1;
  req.smi = SmiKind::kLong;
  req.seed = 2016;
  const auto miss = service.serve(req);
  ASSERT_TRUE(miss.ok) << miss.error;
  const auto hit = service.serve(req);
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(*miss.payload, *hit.payload);
  EXPECT_NE(miss.payload->find("\"slowdown_pct\":"), std::string::npos);
}

// --- Warm worker state ------------------------------------------------------

TEST(ServeWarm, NetworkMemoAdoptionIsBitInert) {
  const NetworkParams params = NetworkParams::wyeast();
  const NetworkModel cold{params};
  NetworkModel donor{params};
  // Fill the donor's memo on a spread of sizes, then let a fresh model
  // adopt it: every queried cost must be bit-identical to the cold path.
  const std::int64_t sizes[] = {0, 1, 64, 4096, 65536, 1 << 20};
  for (const std::int64_t b : sizes) (void)donor.wire_xmit(b);
  NetworkModel warmed{params};
  warmed.warm_from(donor);
  for (const std::int64_t b : sizes) {
    EXPECT_EQ(warmed.wire_xmit(b), cold.wire_xmit(b)) << b;
    EXPECT_EQ(warmed.intra_transfer(b), cold.intra_transfer(b)) << b;
    EXPECT_EQ(warmed.send_cpu_cost(b), cold.send_cpu_cost(b)) << b;
    EXPECT_EQ(warmed.recv_cpu_cost(b), cold.recv_cpu_cost(b)) << b;
  }
  // Mismatched parameters refuse the memo.
  NetworkParams other = params;
  other.bandwidth_bytes_per_s *= 2.0;
  NetworkModel stranger{other};
  stranger.warm_from(donor);
  EXPECT_NE(stranger.wire_xmit(4096), cold.wire_xmit(4096));
}

TEST(ServeWarm, RepeatedServesOnWarmWorkersStayDeterministic) {
  // One worker => every simulation reuses the same warm arena and memo;
  // distinct seeds force re-simulation each time. Results must match a
  // fresh single-shot service (no state leakage between requests).
  ServiceConfig warm_cfg;
  warm_cfg.workers = 1;
  SweepService warm{warm_cfg};
  for (const std::uint64_t seed : {21u, 22u, 23u, 21u}) {
    const auto served = warm.serve(small_ring(seed));
    ASSERT_TRUE(served.ok) << served.error;
    SweepService fresh{warm_cfg};
    const auto expect = fresh.serve(small_ring(seed));
    ASSERT_TRUE(expect.ok);
    EXPECT_EQ(*served.payload, *expect.payload) << seed;
  }
}

// --- Front ends -------------------------------------------------------------

TEST(ServeStream, PumpsLinesAndSkipsBlanks) {
  ServiceConfig cfg;
  cfg.workers = 1;
  SweepService service{cfg};
  std::istringstream in{
      "{\"op\":\"ping\"}\n"
      "\n"
      "{\"experiment\":\"ring\",\"nodes\":3,\"iters\":5,\"bytes\":256}\r\n"
      "not json\n"};
  std::ostringstream out;
  EXPECT_EQ(serve_stream(service, in, out), 3);
  std::istringstream lines{out.str()};
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, R"({"ok":true,"op":"ping"})");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find(R"("ok":true)"), std::string::npos);
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find(R"("ok":false)"), std::string::npos);
  EXPECT_FALSE(std::getline(lines, line));  // exactly 3 responses
}

/// Connect a blocking client to an abstract-namespace socket.
int connect_abstract(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path + 1, path.data() + 1, path.size() - 1);
  const auto len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                          path.size());
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), len) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string recv_line(int fd) {
  std::string line;
  char c = 0;
  while (::recv(fd, &c, 1, 0) == 1) {
    if (c == '\n') break;
    line.push_back(c);
  }
  return line;
}

TEST(ServeSocket, RoundTripsOverAbstractUnixSocket) {
  ServiceConfig cfg;
  cfg.workers = 2;
  SweepService service{cfg};
  const std::string path =
      "@smilab-serve-test-" + std::to_string(::getpid());
  std::unique_ptr<SocketServer> server;
  try {
    server = std::make_unique<SocketServer>(service, path);
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "cannot bind abstract unix socket: " << e.what();
  }
  server->start();

  const int a = connect_abstract(path);
  const int b = connect_abstract(path);
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  const std::string request =
      R"({"experiment":"ring","nodes":3,"iters":5,"bytes":256,"seed":9})"
      "\n";
  ASSERT_EQ(::send(a, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  const std::string first = recv_line(a);
  EXPECT_NE(first.find(R"("cached":false)"), std::string::npos) << first;
  ASSERT_EQ(::send(b, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  const std::string second = recv_line(b);
  EXPECT_NE(second.find(R"("cached":true)"), std::string::npos) << second;
  // Identical result bytes through both connections.
  const auto payload_of = [](const std::string& line) {
    return line.substr(line.find(R"("result":)"));
  };
  EXPECT_EQ(payload_of(first), payload_of(second));

  // Two requests in one write drain as two ordered responses.
  const std::string two = R"({"op":"ping"})" "\n" R"({"op":"ping"})" "\n";
  ASSERT_EQ(::send(a, two.data(), two.size(), 0),
            static_cast<ssize_t>(two.size()));
  EXPECT_EQ(recv_line(a), R"({"ok":true,"op":"ping"})");
  EXPECT_EQ(recv_line(a), R"({"ok":true,"op":"ping"})");

  ::close(a);
  ::close(b);
  server->stop();
  EXPECT_EQ(server->connections_accepted(), 2);
  server->stop();  // idempotent
}

}  // namespace
}  // namespace smilab::serve
