// Tests for the UnixBench workload model (Figure 2 machinery).
#include <gtest/gtest.h>

#include <cmath>

#include "smilab/apps/unixbench/unixbench.h"

namespace smilab {
namespace {

UnixBenchOptions quick_options(int cpus) {
  UnixBenchOptions options;
  options.online_cpus = cpus;
  options.per_test_duration = seconds(5);
  options.seed = 3;
  return options;
}

TEST(UnixBenchTest, SpecsAreComplete) {
  const auto& specs = ub_test_specs();
  ASSERT_EQ(specs.size(), static_cast<std::size_t>(kUbTestCount));
  for (int i = 0; i < kUbTestCount; ++i) {
    EXPECT_EQ(static_cast<int>(specs[static_cast<std::size_t>(i)].test), i);
    EXPECT_GT(specs[static_cast<std::size_t>(i)].base_ops_per_s, 0);
    EXPECT_GT(specs[static_cast<std::size_t>(i)].baseline_ops_per_s, 0);
  }
}

TEST(UnixBenchTest, SingleCpuRatesMatchNominal) {
  const UnixBenchResult result = run_unixbench(quick_options(1));
  for (int i = 0; i < kUbTestCount; ++i) {
    const auto& spec = ub_test_specs()[static_cast<std::size_t>(i)];
    EXPECT_NEAR(result.ops_per_s[static_cast<std::size_t>(i)],
                spec.base_ops_per_s, spec.base_ops_per_s * 0.01)
        << to_string(spec.test);
  }
  EXPECT_GT(result.index, 100.0);
}

TEST(UnixBenchTest, IndexIsGeometricMean) {
  const UnixBenchResult result = run_unixbench(quick_options(1));
  double log_sum = 0;
  for (const double score : result.score) log_sum += std::log(score);
  EXPECT_NEAR(result.index, std::exp(log_sum / kUbTestCount), 1e-6);
}

TEST(UnixBenchTest, ScalesWithPhysicalCores) {
  const double one = run_unixbench(quick_options(1)).index;
  const double four = run_unixbench(quick_options(4)).index;
  EXPECT_NEAR(four / one, 4.0, 0.1);
}

TEST(UnixBenchTest, HttGivesPartialGain) {
  // 8 logical CPUs on 4 cores: more than 4 cores' throughput, much less
  // than 8 (the paper: "the benchmark shows performance gains from HTT").
  const double four = run_unixbench(quick_options(4)).index;
  const double eight = run_unixbench(quick_options(8)).index;
  EXPECT_GT(eight, four * 1.05);
  EXPECT_LT(eight, four * 1.6);
}

TEST(UnixBenchTest, LongSmisDegradeTheIndex) {
  UnixBenchOptions base = quick_options(4);
  UnixBenchOptions noisy = base;
  noisy.smi = SmiConfig::long_with_gap(600);
  const double clean = run_unixbench(base).index;
  const double degraded = run_unixbench(noisy).index;
  // ~105/705 = 15% duty cycle at a 600 ms gap.
  EXPECT_LT(degraded, clean * 0.92);
  EXPECT_GT(degraded, clean * 0.75);
}

TEST(UnixBenchTest, ImpactGrowsAsGapShrinks) {
  const double clean = run_unixbench(quick_options(4)).index;
  double prev = clean;
  for (const int gap : {1600, 600, 100}) {
    UnixBenchOptions options = quick_options(4);
    options.smi = SmiConfig::long_with_gap(gap);
    const double index = run_unixbench(options).index;
    EXPECT_LT(index, prev * 1.005) << "gap " << gap;
    prev = index;
  }
  EXPECT_LT(prev, clean * 0.6);  // 100 ms gap: about half the machine gone
}

// Golden pins (smilint D1's runtime counterpart): the UnixBench score is a
// pure function of (config, seed) SimTime evolution — no wall clock
// anywhere in the scoring path. The host-calibration kernels in
// kernels.cpp are the only sanctioned chrono users (reasoned smilint
// suppression) and never feed these numbers. Values captured from the
// seed build; per-test rates are plain IEEE arithmetic on integer-ns sim
// times, so they pin exactly; the index passes through std::log/std::exp,
// so it gets a 1e-9 relative band for libm variance.
TEST(UnixBenchGoldenTest, IndexPinnedAgainstSeed) {
  const UnixBenchResult clean = run_unixbench(quick_options(4));
  const double kCleanOps[kUbTestCount] = {44000000.0, 8400.0, 4200000.0,
                                          1040000.0, 9600000.0};
  for (int i = 0; i < kUbTestCount; ++i) {
    EXPECT_DOUBLE_EQ(clean.ops_per_s[static_cast<std::size_t>(i)],
                     kCleanOps[i])
        << to_string(ub_test_specs()[static_cast<std::size_t>(i)].test);
  }
  EXPECT_NEAR(clean.index, 3176.6994643983371, 3176.6994643983371 * 1e-9);

  UnixBenchOptions noisy = quick_options(4);
  noisy.smi = SmiConfig::long_with_gap(600);
  const UnixBenchResult degraded = run_unixbench(noisy);
  const double kNoisyOps[kUbTestCount] = {
      37019377.553732432, 7186.3015045131142, 3540430.7866803771,
      890358.09663637611, 8226398.4724229285};
  for (int i = 0; i < kUbTestCount; ++i) {
    EXPECT_DOUBLE_EQ(degraded.ops_per_s[static_cast<std::size_t>(i)],
                     kNoisyOps[i])
        << to_string(ub_test_specs()[static_cast<std::size_t>(i)].test);
  }
  EXPECT_NEAR(degraded.index, 2701.9168932654102, 2701.9168932654102 * 1e-9);
}

TEST(UnixBenchTest, ShortSmisBarelyMatter) {
  UnixBenchOptions base = quick_options(4);
  UnixBenchOptions noisy = base;
  noisy.smi = SmiConfig::short_with_gap(600);
  const double clean = run_unixbench(base).index;
  const double with_short = run_unixbench(noisy).index;
  EXPECT_GT(with_short, clean * 0.985);
}

}  // namespace
}  // namespace smilab
