// Tests for the host-executable UnixBench microkernels: checksums are
// value-dependent (the work really happened), rates are positive, and the
// round-trip token accounting is exact.
#include <gtest/gtest.h>

#include "smilab/apps/unixbench/kernels.h"

namespace smilab {
namespace {

TEST(DhrystoneKernelTest, ChecksumIsDeterministicAndScales) {
  const KernelRun a = run_dhrystone_like(10'000);
  const KernelRun b = run_dhrystone_like(10'000);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_GT(a.ops_per_second, 0.0);
  const KernelRun half = run_dhrystone_like(5'000);
  EXPECT_NE(half.checksum, a.checksum);
}

TEST(WhetstoneKernelTest, RunsAndChecksums) {
  const KernelRun a = run_whetstone_like(2'000);
  const KernelRun b = run_whetstone_like(2'000);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_GT(a.ops_per_second, 0.0);
}

TEST(PipeThroughputKernelTest, MovesRealBytes) {
  const KernelRun run = run_pipe_throughput(2'000);
  EXPECT_GT(run.ops_per_second, 0.0);
  // checksum = sum of the low 7 bits of the iteration counter.
  std::uint64_t expected = 0;
  for (std::int64_t i = 0; i < 2'000; ++i) expected += static_cast<std::uint64_t>(i & 0x7F);
  EXPECT_EQ(run.checksum, expected);
}

TEST(PipeContextSwitchKernelTest, TokenCountsRoundTrips) {
  const std::int64_t trips = 1'000;
  const KernelRun run = run_pipe_context_switch(trips);
  EXPECT_GT(run.ops_per_second, 0.0);
  // The token increments once per round trip; the final xor embeds it.
  EXPECT_NE(run.checksum, 0u);
}

TEST(SyscallKernelTest, IssuesRealSyscalls) {
  const KernelRun run = run_syscall_overhead(50'000);
  EXPECT_GT(run.ops_per_second, 1'000.0);  // any machine does >1k getpid/s
  EXPECT_GT(run.checksum, 0u);             // pid is never 0
}

TEST(KernelRatesTest, RelativeOrderingMatchesModelAssumptions) {
  // The workload model assumes syscall-class ops are much faster than pipe
  // round trips, and dhrystones much faster than whetstone passes. Verify
  // the orderings hold on the host this library is built on.
  const double dhry = run_dhrystone_like(200'000).ops_per_second;
  const double whet = run_whetstone_like(5'000).ops_per_second;
  const double sys = run_syscall_overhead(200'000).ops_per_second;
  const double ctx = run_pipe_context_switch(2'000).ops_per_second;
  EXPECT_GT(dhry, whet * 3);
  EXPECT_GT(sys, ctx * 3);
}

}  // namespace
}  // namespace smilab
