// Unit tests for the discrete-event engine: ordering, determinism,
// cancellation, stepping, and run_until semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "smilab/sim/event_queue.h"

namespace smilab {
namespace {

TEST(EngineTest, ExecutesInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(SimTime{30}, [&] { order.push_back(3); });
  eng.schedule_at(SimTime{10}, [&] { order.push_back(1); });
  eng.schedule_at(SimTime{20}, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), SimTime{30});
}

TEST(EngineTest, TiesBreakByInsertionOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.schedule_at(SimTime{100}, [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EngineTest, ScheduleAfterUsesCurrentTime) {
  Engine eng;
  SimTime seen = SimTime::zero();
  eng.schedule_after(milliseconds(5), [&] {
    eng.schedule_after(milliseconds(5), [&] { seen = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(seen, SimTime::zero() + milliseconds(10));
}

TEST(EngineTest, CancelPreventsExecution) {
  Engine eng;
  bool fired = false;
  const EventId id = eng.schedule_at(SimTime{10}, [&] { fired = true; });
  eng.cancel(id);
  eng.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(eng.pending_events(), 0u);
}

TEST(EngineTest, CancelInvalidIdIsNoOp) {
  Engine eng;
  eng.cancel(EventId{});
  eng.cancel(EventId{12345});
  SUCCEED();
}

TEST(EngineTest, CancelFromWithinEarlierEvent) {
  Engine eng;
  bool fired = false;
  const EventId id = eng.schedule_at(SimTime{20}, [&] { fired = true; });
  eng.schedule_at(SimTime{10}, [&] { eng.cancel(id); });
  eng.run();
  EXPECT_FALSE(fired);
}

TEST(EngineTest, EventsCanScheduleEvents) {
  Engine eng;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) eng.schedule_after(SimDuration{1}, chain);
  };
  eng.schedule_at(SimTime{0}, chain);
  eng.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(eng.now(), SimTime{99});
}

TEST(EngineTest, StepExecutesExactlyOne) {
  Engine eng;
  int count = 0;
  for (int i = 0; i < 5; ++i) {
    eng.schedule_at(SimTime{i}, [&] { ++count; });
  }
  EXPECT_TRUE(eng.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(eng.step());
  EXPECT_EQ(count, 2);
  eng.run();
  EXPECT_EQ(count, 5);
  EXPECT_FALSE(eng.step());
}

TEST(EngineTest, RunUntilStopsAtBoundary) {
  Engine eng;
  std::vector<int> fired;
  eng.schedule_at(SimTime{10}, [&] { fired.push_back(10); });
  eng.schedule_at(SimTime{20}, [&] { fired.push_back(20); });
  eng.schedule_at(SimTime{30}, [&] { fired.push_back(30); });
  const bool pending = eng.run_until(SimTime{20});
  EXPECT_TRUE(pending);
  EXPECT_EQ(fired, (std::vector<int>{10, 20}));
  EXPECT_EQ(eng.now(), SimTime{20});
  eng.run();
  EXPECT_EQ(fired, (std::vector<int>{10, 20, 30}));
}

TEST(EngineTest, RunUntilAdvancesClockWhenIdle) {
  Engine eng;
  EXPECT_FALSE(eng.run_until(SimTime{1000}));
  EXPECT_EQ(eng.now(), SimTime{1000});
}

TEST(EngineTest, StopHaltsRun) {
  Engine eng;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    eng.schedule_at(SimTime{i}, [&] {
      if (++count == 3) eng.stop();
    });
  }
  eng.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(eng.pending_events(), 7u);
}

TEST(EngineTest, ExecutedEventCountTracks) {
  Engine eng;
  for (int i = 0; i < 7; ++i) eng.schedule_at(SimTime{i}, [] {});
  eng.run();
  EXPECT_EQ(eng.executed_events(), 7u);
}

TEST(EngineTest, CancelAfterFireIsANoOp) {
  Engine eng;
  int fired = 0;
  const EventId id = eng.schedule_at(SimTime{1}, [&] { ++fired; });
  eng.run();
  EXPECT_EQ(fired, 1);
  // The slot was retired when the event fired; a stale id must neither
  // create a tombstone nor perturb the counters.
  eng.cancel(id);
  eng.cancel(id);
  EXPECT_EQ(eng.tombstones(), 0u);
  EXPECT_EQ(eng.cancelled_events(), 0u);
  EXPECT_EQ(eng.executed_events(), 1u);
  EXPECT_EQ(eng.pending_events(), 0u);
}

TEST(EngineTest, StaleIdNeverCancelsSlotReuse) {
  Engine eng;
  int first = 0, second = 0;
  const EventId a = eng.schedule_at(SimTime{1}, [&] { ++first; });
  eng.run();
  // The new event reuses a's slab slot (free-list reuse) but carries a
  // fresh generation; cancelling with the stale id must not touch it.
  const EventId b = eng.schedule_at(SimTime{2}, [&] { ++second; });
  EXPECT_EQ(a.slot, b.slot);
  EXPECT_NE(a.seq, b.seq);
  eng.cancel(a);
  eng.run();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

TEST(EngineTest, DoubleCancelCountsOnce) {
  Engine eng;
  const EventId id = eng.schedule_at(SimTime{5}, [] {});
  eng.cancel(id);
  eng.cancel(id);
  EXPECT_EQ(eng.cancelled_events(), 1u);
  EXPECT_EQ(eng.pending_events(), 0u);
  eng.run();
  EXPECT_EQ(eng.executed_events(), 0u);
}

TEST(EngineTest, MassCancelCompactsTombstones) {
  Engine eng;
  std::vector<EventId> ids;
  for (int i = 0; i < 100'000; ++i) {
    ids.push_back(eng.schedule_at(SimTime{1'000'000 + i}, [] {}));
  }
  for (const EventId id : ids) eng.cancel(id);
  // Compaction keeps tombstones bounded by the threshold (64) no matter how
  // many events were cancelled; the first pop sweeps the stragglers.
  EXPECT_LE(eng.tombstones(), 64u);
  EXPECT_EQ(eng.pending_events(), 0u);
  EXPECT_EQ(eng.cancelled_events(), 100'000u);
  EXPECT_FALSE(eng.step());
  EXPECT_EQ(eng.tombstones(), 0u);
}

TEST(EngineTest, SlabSlotsAreReusedInSteadyState) {
  Engine eng;
  // Self-rescheduling chains: the pending set stays at 8, so the slab must
  // not grow past a handful of slots no matter how many events fire.
  int fired = 0;
  std::function<void(int)> arm = [&](int lane) {
    if (++fired >= 80'000) return;
    eng.schedule_after(SimDuration{1 + lane % 3}, [&arm, lane] { arm(lane); });
  };
  for (int lane = 0; lane < 8; ++lane) {
    eng.schedule_at(SimTime{lane}, [&arm, lane] { arm(lane); });
  }
  eng.run();
  // Each of the 8 lanes may overshoot the shared quota by one in-flight event.
  EXPECT_GE(fired, 80'000);
  EXPECT_LE(fired, 80'007);
  EXPECT_LE(eng.slot_capacity(), 64u);
}

TEST(EngineTest, LargeCallbacksBoxAndStillFire) {
  Engine eng;
  // A capture larger than the inline buffer exercises the boxed fallback.
  struct Big {
    std::uint64_t words[16] = {};
  };
  Big big;
  big.words[0] = 41;
  std::uint64_t seen = 0;
  eng.schedule_at(SimTime{1}, [big, &seen] { seen = big.words[0] + 1; });
  eng.run();
  EXPECT_EQ(seen, 42u);
}

// Randomized interleaving of schedule/cancel/step checked against a simple
// reference model (a sorted list of (time, seq) records).
TEST(EngineTest, StressScheduleCancelStepMatchesReferenceModel) {
  struct Ref {
    std::int64_t time;
    std::uint64_t seq;
    bool cancelled = false;
  };
  Engine eng;
  std::vector<Ref> model;
  std::vector<std::pair<EventId, std::size_t>> handles;  // id -> model index
  std::vector<std::uint64_t> fired;   // engine-side execution order (seq)
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::uint64_t seq_counter = 0;
  std::size_t scheduled = 0, cancelled = 0;
  for (int op = 0; op < 20'000; ++op) {
    const std::uint64_t r = next();
    if (r % 100 < 55) {  // schedule at a future (possibly tied) time
      const auto t = static_cast<std::int64_t>(eng.now().ns() + r % 97);
      const std::uint64_t seq = seq_counter++;
      const EventId id = eng.schedule_at(
          SimTime{t}, [&fired, seq] { fired.push_back(seq); });
      model.push_back(Ref{t, seq});
      handles.emplace_back(id, model.size() - 1);
      ++scheduled;
    } else if (r % 100 < 75 && !handles.empty()) {  // cancel a random handle
      const auto pick = r % handles.size();
      auto [id, idx] = handles[pick];
      if (!model[idx].cancelled) {
        // May be stale (already fired); the engine must treat that as a
        // no-op, which the model mirrors by only marking unfired entries.
        const bool still_pending =
            std::find(fired.begin(), fired.end(), model[idx].seq) == fired.end();
        eng.cancel(id);
        if (still_pending) {
          model[idx].cancelled = true;
          ++cancelled;
        }
      }
    } else {  // step
      eng.step();
    }
  }
  eng.run();
  // Reference order: uncancelled records by (time, seq).
  std::vector<Ref> expect;
  for (const Ref& ref : model) {
    if (!ref.cancelled) expect.push_back(ref);
  }
  std::sort(expect.begin(), expect.end(), [](const Ref& a, const Ref& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  });
  ASSERT_EQ(fired.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(fired[i], expect[i].seq) << "at position " << i;
  }
  // Conservation: everything scheduled either executed or was cancelled.
  EXPECT_EQ(eng.executed_events() + eng.cancelled_events(),
            static_cast<std::uint64_t>(scheduled));
  EXPECT_EQ(eng.cancelled_events(), static_cast<std::uint64_t>(cancelled));
  EXPECT_EQ(eng.pending_events(), 0u);
}

TEST(EngineTest, ManyEventsStressOrdering) {
  Engine eng;
  SimTime last = SimTime::zero();
  bool monotonic = true;
  // Insert in a scrambled deterministic order.
  for (int i = 0; i < 10'000; ++i) {
    const auto t = SimTime{(i * 7919) % 10'000};
    eng.schedule_at(t, [&, t] {
      if (eng.now() < last) monotonic = false;
      last = eng.now();
      EXPECT_EQ(eng.now(), t);
    });
  }
  eng.run();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(eng.executed_events(), 10'000u);
}

}  // namespace
}  // namespace smilab
