// Unit tests for the discrete-event engine: ordering, determinism,
// cancellation, stepping, and run_until semantics.
#include <gtest/gtest.h>

#include <vector>

#include "smilab/sim/event_queue.h"

namespace smilab {
namespace {

TEST(EngineTest, ExecutesInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(SimTime{30}, [&] { order.push_back(3); });
  eng.schedule_at(SimTime{10}, [&] { order.push_back(1); });
  eng.schedule_at(SimTime{20}, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), SimTime{30});
}

TEST(EngineTest, TiesBreakByInsertionOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.schedule_at(SimTime{100}, [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EngineTest, ScheduleAfterUsesCurrentTime) {
  Engine eng;
  SimTime seen = SimTime::zero();
  eng.schedule_after(milliseconds(5), [&] {
    eng.schedule_after(milliseconds(5), [&] { seen = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(seen, SimTime::zero() + milliseconds(10));
}

TEST(EngineTest, CancelPreventsExecution) {
  Engine eng;
  bool fired = false;
  const EventId id = eng.schedule_at(SimTime{10}, [&] { fired = true; });
  eng.cancel(id);
  eng.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(eng.pending_events(), 0u);
}

TEST(EngineTest, CancelInvalidIdIsNoOp) {
  Engine eng;
  eng.cancel(EventId{});
  eng.cancel(EventId{12345});
  SUCCEED();
}

TEST(EngineTest, CancelFromWithinEarlierEvent) {
  Engine eng;
  bool fired = false;
  const EventId id = eng.schedule_at(SimTime{20}, [&] { fired = true; });
  eng.schedule_at(SimTime{10}, [&] { eng.cancel(id); });
  eng.run();
  EXPECT_FALSE(fired);
}

TEST(EngineTest, EventsCanScheduleEvents) {
  Engine eng;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) eng.schedule_after(SimDuration{1}, chain);
  };
  eng.schedule_at(SimTime{0}, chain);
  eng.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(eng.now(), SimTime{99});
}

TEST(EngineTest, StepExecutesExactlyOne) {
  Engine eng;
  int count = 0;
  for (int i = 0; i < 5; ++i) {
    eng.schedule_at(SimTime{i}, [&] { ++count; });
  }
  EXPECT_TRUE(eng.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(eng.step());
  EXPECT_EQ(count, 2);
  eng.run();
  EXPECT_EQ(count, 5);
  EXPECT_FALSE(eng.step());
}

TEST(EngineTest, RunUntilStopsAtBoundary) {
  Engine eng;
  std::vector<int> fired;
  eng.schedule_at(SimTime{10}, [&] { fired.push_back(10); });
  eng.schedule_at(SimTime{20}, [&] { fired.push_back(20); });
  eng.schedule_at(SimTime{30}, [&] { fired.push_back(30); });
  const bool pending = eng.run_until(SimTime{20});
  EXPECT_TRUE(pending);
  EXPECT_EQ(fired, (std::vector<int>{10, 20}));
  EXPECT_EQ(eng.now(), SimTime{20});
  eng.run();
  EXPECT_EQ(fired, (std::vector<int>{10, 20, 30}));
}

TEST(EngineTest, RunUntilAdvancesClockWhenIdle) {
  Engine eng;
  EXPECT_FALSE(eng.run_until(SimTime{1000}));
  EXPECT_EQ(eng.now(), SimTime{1000});
}

TEST(EngineTest, StopHaltsRun) {
  Engine eng;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    eng.schedule_at(SimTime{i}, [&] {
      if (++count == 3) eng.stop();
    });
  }
  eng.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(eng.pending_events(), 7u);
}

TEST(EngineTest, ExecutedEventCountTracks) {
  Engine eng;
  for (int i = 0; i < 7; ++i) eng.schedule_at(SimTime{i}, [] {});
  eng.run();
  EXPECT_EQ(eng.executed_events(), 7u);
}

TEST(EngineTest, ManyEventsStressOrdering) {
  Engine eng;
  SimTime last = SimTime::zero();
  bool monotonic = true;
  // Insert in a scrambled deterministic order.
  for (int i = 0; i < 10'000; ++i) {
    const auto t = SimTime{(i * 7919) % 10'000};
    eng.schedule_at(t, [&, t] {
      if (eng.now() < last) monotonic = false;
      last = eng.now();
      EXPECT_EQ(eng.now(), t);
    });
  }
  eng.run();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(eng.executed_events(), 10'000u);
}

}  // namespace
}  // namespace smilab
