// Deterministic fuzz harness: generate random task systems (random
// topologies, programs, communication patterns, SMI regimes) from seeds
// and check the global invariants on every one:
//   * the run terminates (no deadlock, no livelock),
//   * per-task conservation: wall >= true cpu; os-view = true + stolen
//     when the task never shares or leaves its CPU ledger,
//   * accounting totals are consistent with the SMM interval record,
//   * identical seeds give bit-identical outcomes.
//
// Communication patterns are generated deadlock-free by construction
// (pairwise matched sends/recvs ordered by a global sequence).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "smilab/sim/system.h"
#include "smilab/time/rng.h"

namespace smilab {
namespace {

struct FuzzOutcome {
  std::int64_t finish_ns = 0;
  std::int64_t total_true_ns = 0;
  std::int64_t total_stolen_ns = 0;
  std::int64_t messages = 0;
};

FuzzOutcome run_fuzz(std::uint64_t seed) {
  Rng rng{seed};
  SystemConfig cfg;
  cfg.machine = rng.next_double() < 0.5 ? MachineSpec::wyeast_e5520()
                                        : MachineSpec::poweredge_r410_e5620();
  cfg.node_count = static_cast<int>(rng.uniform_int(1, 4));
  cfg.net = NetworkParams::wyeast();
  const double smi_pick = rng.next_double();
  if (smi_pick < 0.25) {
    cfg.smi = SmiConfig::none();
  } else if (smi_pick < 0.5) {
    cfg.smi = SmiConfig::short_with_gap(rng.uniform_int(50, 1000));
  } else {
    cfg.smi = SmiConfig::long_with_gap(rng.uniform_int(150, 1600));
    cfg.smi.synchronized_across_nodes = rng.next_double() < 0.3;
  }
  cfg.seed = seed ^ 0xABCDEF;
  System sys{cfg};
  const int online = static_cast<int>(
      rng.uniform_int(1, cfg.machine.logical_cpus()));
  sys.set_online_cpus(online);

  const int ranks = static_cast<int>(rng.uniform_int(2, 6));
  const GroupId g = sys.create_group(ranks);

  // Build per-rank programs: interleave compute and a global sequence of
  // matched point-to-point transfers (sender's Send appears before or
  // after computes, receiver's Recv in the same global order per rank —
  // ordered matched pairs over a tree-free pattern cannot deadlock because
  // every Recv's message is eventually injected by a sender that never
  // waits on the receiver... senders of rendezvous messages DO wait, so
  // keep payloads under the rendezvous threshold).
  std::vector<std::vector<Action>> programs(static_cast<std::size_t>(ranks));
  const int transfers = static_cast<int>(rng.uniform_int(0, 12));
  for (auto& p : programs) {
    p.push_back(Compute{milliseconds(rng.uniform_int(1, 120))});
  }
  std::vector<std::vector<int>> open_handles(static_cast<std::size_t>(ranks));
  int next_handle = 1;
  for (int t = 0; t < transfers; ++t) {
    const int src = static_cast<int>(rng.uniform_int(0, ranks - 1));
    int dst = static_cast<int>(rng.uniform_int(0, ranks - 1));
    if (dst == src) dst = (dst + 1) % ranks;
    const std::int64_t bytes = rng.uniform_int(1, 60'000);
    const int tag = 100 + t;
    // Mix blocking and nonblocking forms of the same matched transfer.
    if (rng.next_double() < 0.35) {
      const int sh = next_handle++;
      programs[static_cast<std::size_t>(src)].push_back(Isend{dst, bytes, tag, sh});
      open_handles[static_cast<std::size_t>(src)].push_back(sh);
    } else {
      programs[static_cast<std::size_t>(src)].push_back(Send{dst, bytes, tag});
    }
    if (rng.next_double() < 0.35) {
      const int rh = next_handle++;
      programs[static_cast<std::size_t>(dst)].push_back(Irecv{src, tag, rh});
      open_handles[static_cast<std::size_t>(dst)].push_back(rh);
    } else {
      programs[static_cast<std::size_t>(dst)].push_back(Recv{src, tag});
    }
    if (rng.next_double() < 0.5) {
      programs[static_cast<std::size_t>(src)].push_back(
          Compute{microseconds(rng.uniform_int(10, 5000))});
    }
  }
  // Close every open nonblocking handle.
  for (int r = 0; r < ranks; ++r) {
    auto& handles = open_handles[static_cast<std::size_t>(r)];
    if (!handles.empty()) {
      programs[static_cast<std::size_t>(r)].push_back(WaitAll{std::move(handles)});
    }
  }
  // A potential ordering hazard: rank A's Recv(t1) before its Send(t2)
  // while the t1 sender waits on A's t2? Eager sends never wait, so no
  // cycle is possible; every Send completes unconditionally.

  std::vector<TaskId> ids;
  for (int r = 0; r < ranks; ++r) {
    TaskSpec spec;
    spec.name = "fuzz" + std::to_string(r);
    spec.node = static_cast<int>(rng.uniform_int(0, cfg.node_count - 1));
    spec.wait_policy =
        rng.next_double() < 0.5 ? WaitPolicy::kSpin : WaitPolicy::kBlock;
    spec.profile.htt_efficiency = rng.uniform(0.5, 0.9);
    spec.profile.hot_set_fraction = rng.uniform(0.0, 1.2);
    spec.actions = std::make_unique<VectorActions>(
        std::move(programs[static_cast<std::size_t>(r)]));
    ids.push_back(sys.spawn_member(g, r, std::move(spec)));
  }
  sys.run();
  sys.validate();  // internal cross-reference consistency

  FuzzOutcome outcome;
  outcome.finish_ns = sys.last_finish_time().ns();
  for (const TaskId id : ids) {
    const TaskStats& stats = sys.task_stats(id);
    EXPECT_TRUE(stats.finished) << "seed " << seed;
    const SimDuration wall = stats.end_time - stats.start_time;
    EXPECT_GE(wall.ns(), stats.true_cpu_time.ns() - 1) << "seed " << seed;
    EXPECT_GE(stats.os_view_cpu_time.ns(), stats.true_cpu_time.ns())
        << "seed " << seed;
    EXPECT_EQ(stats.os_view_cpu_time.ns(),
              (stats.true_cpu_time + stats.smm_stolen_time).ns())
        << "seed " << seed;
    outcome.total_true_ns += stats.true_cpu_time.ns();
    outcome.total_stolen_ns += stats.smm_stolen_time.ns();
    outcome.messages += stats.messages_received;
  }
  // Stolen time cannot exceed recorded SMM residency x online CPUs.
  SimDuration total_residency{};
  for (const auto& interval : sys.smm_accounting().intervals()) {
    total_residency += interval.duration();
  }
  EXPECT_LE(outcome.total_stolen_ns,
            total_residency.ns() * cfg.machine.logical_cpus())
      << "seed " << seed;
  return outcome;
}

class FuzzSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range(0, 64));

TEST_P(FuzzSweep, InvariantsHoldAndRunIsDeterministic) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) * 7919 + 13;
  const FuzzOutcome a = run_fuzz(seed);
  const FuzzOutcome b = run_fuzz(seed);
  EXPECT_EQ(a.finish_ns, b.finish_ns);
  EXPECT_EQ(a.total_true_ns, b.total_true_ns);
  EXPECT_EQ(a.total_stolen_ns, b.total_stolen_ns);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_GT(a.finish_ns, 0);
}

}  // namespace
}  // namespace smilab
