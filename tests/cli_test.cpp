// Tests for the CLI layer: option parsing and command behaviour (run
// in-process against string streams).
#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <sstream>
#include <vector>

#include "smilab/cli/commands.h"
#include "smilab/cli/options.h"

namespace smilab {
namespace {

Options parse_ok(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"smilab"};
  argv.insert(argv.end(), args.begin(), args.end());
  std::string error;
  const auto options =
      Options::parse(static_cast<int>(argv.size()), argv.data(), &error);
  EXPECT_TRUE(options.has_value()) << error;
  return *options;
}

TEST(OptionsTest, ParsesCommandAndFlags) {
  const Options options =
      parse_ok({"nas", "--workload=ft", "--nodes=8", "--htt"});
  EXPECT_EQ(options.command(), "nas");
  EXPECT_EQ(options.get("workload", ""), "ft");
  std::string error;
  EXPECT_EQ(options.get_int("nodes", 0, &error), 8);
  EXPECT_TRUE(options.get_bool("htt", false));
  EXPECT_TRUE(error.empty());
}

TEST(OptionsTest, DefaultsWhenMissing) {
  const Options options = parse_ok({"convolve"});
  std::string error;
  EXPECT_EQ(options.get("case", "cu"), "cu");
  EXPECT_EQ(options.get_int("cpus", 8, &error), 8);
  EXPECT_DOUBLE_EQ(options.get_double("x", 1.5, &error), 1.5);
  EXPECT_FALSE(options.get_bool("htt", false));
}

TEST(OptionsTest, RejectsMalformedInput) {
  std::string error;
  const char* extra_positional[] = {"smilab", "nas", "oops"};
  EXPECT_FALSE(Options::parse(3, extra_positional, &error).has_value());
  EXPECT_NE(error.find("positional"), std::string::npos);

  const char* empty_flag[] = {"smilab", "--"};
  EXPECT_FALSE(Options::parse(2, empty_flag, &error).has_value());

  const char* empty_name[] = {"smilab", "--=3"};
  EXPECT_FALSE(Options::parse(2, empty_name, &error).has_value());
}

TEST(OptionsTest, TypeErrorsReported) {
  const Options options = parse_ok({"nas", "--nodes=abc"});
  std::string error;
  EXPECT_EQ(options.get_int("nodes", 7, &error), 7);
  EXPECT_NE(error.find("--nodes"), std::string::npos);
}

TEST(OptionsTest, UnconsumedFlagsDetected) {
  const Options options = parse_ok({"nas", "--workload=ep", "--typo=1"});
  (void)options.get("workload", "");
  const auto extra = options.unconsumed();
  ASSERT_EQ(extra.size(), 1u);
  EXPECT_EQ(extra[0], "typo");
}

int run(std::initializer_list<const char*> args, std::string* out_text,
        std::string* err_text = nullptr) {
  std::vector<const char*> argv{"smilab"};
  argv.insert(argv.end(), args.begin(), args.end());
  std::ostringstream out, err;
  const int rc =
      run_cli(static_cast<int>(argv.size()), argv.data(), out, err);
  if (out_text) *out_text = out.str();
  if (err_text) *err_text = err.str();
  return rc;
}

TEST(CliTest, HelpPrintsUsage) {
  std::string out;
  EXPECT_EQ(run({"help"}, &out), 0);
  EXPECT_NE(out.find("usage: smilab"), std::string::npos);
  EXPECT_NE(out.find("unixbench"), std::string::npos);
}

TEST(CliTest, NoCommandIsAnError) {
  std::string out;
  EXPECT_EQ(run({}, &out), 2);
  EXPECT_NE(out.find("usage"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails) {
  std::string out, err;
  EXPECT_EQ(run({"frobnicate"}, &out, &err), 2);
  EXPECT_NE(err.find("unknown command"), std::string::npos);
}

TEST(CliTest, UnknownFlagFails) {
  std::string out, err;
  EXPECT_EQ(run({"convolve", "--cpuz=4"}, &out, &err), 2);
  EXPECT_NE(err.find("--cpuz"), std::string::npos);
}

TEST(CliTest, NasCommandReportsSlowdown) {
  std::string out;
  const int rc = run({"nas", "--workload=ep", "--class=A", "--nodes=2",
                      "--smi=long", "--trials=2"},
                     &out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("NAS EP class A"), std::string::npos);
  EXPECT_NE(out.find("paper baseline 11.69"), std::string::npos);
  EXPECT_NE(out.find("% slowdown"), std::string::npos);
}

TEST(CliTest, NasRejectsInvalidRankCount) {
  std::string out, err;
  const int rc = run({"nas", "--workload=bt", "--nodes=3"}, &out, &err);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(err.find("square"), std::string::npos);
}

TEST(CliTest, ConvolveCommandRuns) {
  std::string out;
  const int rc =
      run({"convolve", "--case=cf", "--cpus=4", "--smi=long", "--gap-ms=200"},
          &out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("CacheFriendly"), std::string::npos);
  EXPECT_NE(out.find("% slowdown"), std::string::npos);
}

TEST(CliTest, UnixbenchCommandRuns) {
  std::string out;
  const int rc = run({"unixbench", "--cpus=2", "--smi=long", "--gap-ms=600"},
                     &out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("total index"), std::string::npos);
  EXPECT_NE(out.find("Dhrystone"), std::string::npos);
}

TEST(CliTest, DetectCommandFindsSmis) {
  std::string out;
  const int rc = run({"detect", "--smi=long", "--gap-ms=1000",
                      "--duration-s=10", "--window-ms=1000",
                      "--period-ms=1000"},
                     &out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("recall 100"), std::string::npos);
}

TEST(CliTest, RimCommandReportsPolicy) {
  std::string out;
  const int rc = run({"rim", "--scan-mb=16", "--interval-ms=1000"}, &out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("duty cycle"), std::string::npos);
  EXPECT_NE(out.find("detection latency"), std::string::npos);
  EXPECT_NE(out.find("BIOSBITS"), std::string::npos);
}

TEST(CliTest, TraceFlagWritesChromeJson) {
  const std::string path = ::testing::TempDir() + "/smilab_cli_trace.json";
  std::string out;
  const int rc = run({"detect", "--smi=long", "--duration-s=5",
                      ("--trace=" + path).c_str()},
                     &out);
  EXPECT_EQ(rc, 0);
  std::ifstream file{path};
  ASSERT_TRUE(file.good());
  const std::string contents{std::istreambuf_iterator<char>{file},
                             std::istreambuf_iterator<char>{}};
  EXPECT_NE(contents.find("traceEvents"), std::string::npos);
  EXPECT_NE(contents.find("SMM"), std::string::npos);
}

}  // namespace
}  // namespace smilab
