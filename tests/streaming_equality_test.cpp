// Streaming/retained equality suite: streaming action sources
// (mpi/streaming.h, mpi/job.h run_mpi_job_streaming) are a pure memory
// change. Every scenario here runs twice — retained (the bit-pinned
// historical path, covered by the golden hashes elsewhere) and streaming —
// and asserts the full observable trace hashes are EQUAL, extending those
// pins to the streaming path. Same structure for the engine's same-instant
// lane: on (default) vs off must execute the identical event order.
//
// Alongside the equality pins: unit behaviour of ChunkedProgramSource and
// RepeatActions, peak_program_actions high-water accounting (the metric
// that proves streaming's O(ranks) residency), and SmmAccounting's bounded
// ring keeping aggregates exact while capping the retained interval list.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "smilab/apps/nas/nas.h"
#include "smilab/apps/nas/runner.h"
#include "smilab/fault/fault_injector.h"
#include "smilab/fault/fault_plan.h"
#include "smilab/mpi/collectives.h"
#include "smilab/mpi/job.h"
#include "smilab/mpi/streaming.h"
#include "smilab/sim/system.h"
#include "smilab/smm/accounting.h"
#include "smilab/thread/work_queue.h"

namespace smilab {
namespace {

class TraceHash {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ull;
    }
  }
  void mix_signed(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

void mix_stats(TraceHash& h, const TaskStats& s) {
  h.mix_signed(s.end_time.ns());
  h.mix_signed(s.os_view_cpu_time.ns());
  h.mix_signed(s.true_cpu_time.ns());
  h.mix_signed(s.smm_stolen_time.ns());
  h.mix_signed(s.refill_overhead.ns());
  h.mix_signed(s.smm_hits);
  h.mix_signed(s.messages_sent);
  h.mix_signed(s.messages_received);
  h.mix_signed(s.bytes_sent);
  h.mix(s.finished ? 1 : 0);
  h.mix(s.failed ? 1 : 0);
}

void mix_system(TraceHash& h, const System& sys) {
  for (int t = 0; t < sys.task_count(); ++t) {
    mix_stats(h, sys.task_stats(TaskId{t}));
  }
  h.mix_signed(sys.inter_node_bytes());
  h.mix_signed(sys.messages_dropped());
  h.mix_signed(sys.messages_duplicated());
  h.mix_signed(sys.retransmissions());
  h.mix_signed(sys.transport_failures());
  h.mix_signed(sys.peak_in_flight_messages());
}

// --- NAS retained vs streaming ---------------------------------------------

System make_nas_system(const NasJobSpec& spec, const SmiConfig& smi,
                       std::uint64_t seed) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = spec.nodes;
  cfg.net = NetworkParams::wyeast();
  cfg.smi = smi;
  cfg.seed = seed;
  cfg.node_speed_sigma = 0.003;
  return System{cfg};
}

struct NasRun {
  std::uint64_t hash = 0;
  std::int64_t peak_program_actions = 0;
};

NasRun nas_run(const NasJobSpec& spec, const NasKnob& knob, TraceMode mode,
               const SmiConfig& smi, std::uint64_t seed) {
  System sys = make_nas_system(spec, smi, seed);
  sys.set_online_cpus(spec.htt ? sys.config().machine.logical_cpus()
                               : sys.config().machine.cores());
  const auto placement = block_placement(spec.ranks(), spec.ranks_per_node);
  MpiJobResult result =
      mode == TraceMode::kStreaming
          ? run_mpi_job_streaming(sys, spec.ranks(),
                                  make_nas_rank_sources(spec, knob), placement,
                                  WorkloadProfile::dense_fp())
          : run_mpi_job(sys, build_nas_trace(spec, knob), placement,
                        WorkloadProfile::dense_fp());
  sys.validate();
  TraceHash h;
  h.mix_signed(result.elapsed.ns());
  mix_system(h, sys);
  return NasRun{h.value(), sys.peak_program_actions()};
}

// A fast FT-shaped spec: real alltoall + allreduce structure at 8 ranks.
NasJobSpec small_ft(bool htt = false) {
  NasJobSpec spec;
  spec.bench = NasBenchmark::kFT;
  spec.cls = NasClass::kA;  // 6 iterations
  spec.nodes = 2;
  spec.ranks_per_node = 4;
  spec.htt = htt;
  return spec;
}

TEST(StreamingEqualityTest, FtStreamingMatchesRetainedUnderLongSmi) {
  const NasKnob knob{32 * 1024, 500};
  for (const std::uint64_t seed : {1ull, 9ull}) {
    EXPECT_EQ(
        nas_run(small_ft(), knob, TraceMode::kStreaming,
                SmiConfig::long_every_second(), seed)
            .hash,
        nas_run(small_ft(), knob, TraceMode::kRetained,
                SmiConfig::long_every_second(), seed)
            .hash)
        << "seed " << seed;
  }
}

TEST(StreamingEqualityTest, FtStreamingMatchesRetainedUnderHtt) {
  const NasKnob knob{16 * 1024, 0};
  EXPECT_EQ(nas_run(small_ft(/*htt=*/true), knob, TraceMode::kStreaming,
                    SmiConfig::short_every_second(), 4)
                .hash,
            nas_run(small_ft(/*htt=*/true), knob, TraceMode::kRetained,
                    SmiConfig::short_every_second(), 4)
                .hash);
}

TEST(StreamingEqualityTest, BtStreamingMatchesRetained) {
  NasJobSpec spec;
  spec.bench = NasBenchmark::kBT;
  spec.cls = NasClass::kA;
  spec.nodes = 4;  // 4 ranks: square
  spec.ranks_per_node = 1;
  const NasKnob knob{8 * 1024, 0};
  EXPECT_EQ(nas_run(spec, knob, TraceMode::kStreaming,
                    SmiConfig::long_every_second(), 7)
                .hash,
            nas_run(spec, knob, TraceMode::kRetained,
                    SmiConfig::long_every_second(), 7)
                .hash);
}

TEST(StreamingEqualityTest, EpStreamingMatchesRetained) {
  NasJobSpec spec;
  spec.bench = NasBenchmark::kEP;
  spec.cls = NasClass::kA;
  spec.nodes = 4;
  spec.ranks_per_node = 2;
  const NasKnob knob{0, 0};
  EXPECT_EQ(nas_run(spec, knob, TraceMode::kStreaming,
                    SmiConfig::short_every_second(), 11)
                .hash,
            nas_run(spec, knob, TraceMode::kRetained,
                    SmiConfig::short_every_second(), 11)
                .hash);
}

TEST(StreamingEqualityTest, SimulateNasOnceAgreesAcrossModes) {
  const NasJobSpec spec = small_ft();
  const NasKnob knob{16 * 1024, 250};
  const double retained =
      simulate_nas_once(spec, knob, SmiConfig::long_every_second(), 3, 0.003,
                        TraceMode::kRetained);
  const double streaming =
      simulate_nas_once(spec, knob, SmiConfig::long_every_second(), 3, 0.003,
                        TraceMode::kStreaming);
  EXPECT_EQ(retained, streaming);  // exact, not approximate
}

// --- Faulted runs: try_run parity ------------------------------------------

std::uint64_t faulted_hash(TraceMode mode, std::uint64_t seed) {
  const NasJobSpec spec = small_ft();
  const NasKnob knob{64 * 1024, 0};
  System sys = make_nas_system(spec, SmiConfig::long_every_second(), seed);
  FaultPlan plan;
  plan.drop(0.05).duplicate(0.05).crash(1, SimTime{1'200'000'000});
  FaultInjector injector{sys, plan};
  const auto placement = block_placement(spec.ranks(), spec.ranks_per_node);
  MpiJobRunResult out =
      mode == TraceMode::kStreaming
          ? try_run_mpi_job_streaming(sys, spec.ranks(),
                                      make_nas_rank_sources(spec, knob),
                                      placement, WorkloadProfile::dense_fp())
          : try_run_mpi_job(sys, build_nas_trace(spec, knob), placement,
                            WorkloadProfile::dense_fp());
  TraceHash h;
  h.mix(static_cast<std::uint64_t>(out.run.status));
  h.mix_signed(out.run.peak_program_actions > 0 ? 1 : 0);
  mix_system(h, sys);
  return h.value();
}

TEST(StreamingEqualityTest, FaultedRunsMatchAcrossModes) {
  for (const std::uint64_t seed : {7ull, 23ull}) {
    EXPECT_EQ(faulted_hash(TraceMode::kStreaming, seed),
              faulted_hash(TraceMode::kRetained, seed))
        << "seed " << seed;
  }
}

// --- peak_program_actions ---------------------------------------------------

TEST(StreamingEqualityTest, StreamingPeakIsFractionOfRetained) {
  const NasJobSpec spec = small_ft();
  const NasKnob knob{16 * 1024, 0};
  const NasRun retained = nas_run(spec, knob, TraceMode::kRetained,
                                  SmiConfig::none(), 1);
  const NasRun streaming = nas_run(spec, knob, TraceMode::kStreaming,
                                   SmiConfig::none(), 1);
  EXPECT_EQ(retained.hash, streaming.hash);

  // Retained: the whole job is materialized at spawn. FT A at 8 ranks has
  // 6 alltoall iterations + the checksum allreduce per rank.
  std::int64_t total = 0;
  for (const auto& rp : build_nas_trace(spec, knob)) {
    total += static_cast<std::int64_t>(rp.size());
  }
  EXPECT_EQ(retained.peak_program_actions, total);
  // Streaming: at most one chunk (<= one iteration) per rank at a time.
  EXPECT_LT(streaming.peak_program_actions, retained.peak_program_actions / 3);
  EXPECT_GT(streaming.peak_program_actions, 0);
}

TEST(StreamingEqualityTest, RunResultCarriesPeakProgramActions) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = 1;
  System sys{cfg};
  TaskSpec spec;
  spec.name = "t";
  spec.node = 0;
  spec.actions = std::make_unique<VectorActions>(std::vector<Action>{
      Action{Compute{milliseconds(1)}}, Action{Compute{milliseconds(1)}}});
  sys.spawn(std::move(spec));
  const RunResult r = sys.try_run();
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.peak_program_actions, 2);
  EXPECT_EQ(sys.peak_program_actions(), 2);
}

// --- ChunkedProgramSource unit behaviour ------------------------------------

TEST(ChunkedProgramSourceTest, DrainsChunksInOrderAndSkipsEmptyOnes) {
  ChunkedProgramSource src{
      0, 1, [](int chunk, RankProgram& rp, TagAllocator& tags) {
        if (chunk >= 4) return false;
        (void)tags;
        if (chunk == 1) return true;  // empty chunk: yields nothing
        rp.compute(milliseconds(chunk + 1));
        rp.sleep(milliseconds(1));
        return true;
      }};
  std::vector<std::int64_t> compute_ms;
  while (auto a = src.next()) {
    if (const auto* c = std::get_if<Compute>(&*a)) {
      compute_ms.push_back(c->work.ns() / 1'000'000);
    }
    EXPECT_LE(src.materialized_actions(), 2);  // never more than one chunk
  }
  EXPECT_EQ(compute_ms, (std::vector<std::int64_t>{1, 3, 4}));
  EXPECT_EQ(src.chunks_emitted(), 4);
  EXPECT_FALSE(src.next().has_value());  // exhausted stays exhausted
}

TEST(ChunkedProgramSourceTest, PerRankTagStreamsAdvanceInLockstep) {
  // Two independent sources for different ranks must allocate identical
  // tag sequences (the lockstep property the collectives rely on).
  std::vector<int> tags_seen[2];
  for (int rank = 0; rank < 2; ++rank) {
    ChunkedProgramSource src{
        rank, 2, [rank, &tags_seen](int chunk, RankProgram& rp,
                                    TagAllocator& tags) {
          if (chunk >= 3) return false;
          tags_seen[rank].push_back(tags.allocate(2));
          rp.compute(milliseconds(1));
          return true;
        }};
    while (src.next()) {
    }
  }
  EXPECT_EQ(tags_seen[0], tags_seen[1]);
  EXPECT_EQ(tags_seen[0], (std::vector<int>{1000, 1002, 1004}));
}

// --- RepeatActions -----------------------------------------------------------

TEST(RepeatActionsTest, MatchesMaterializedVectorExactly) {
  auto run_once = [](bool streaming) {
    SystemConfig cfg;
    cfg.machine = MachineSpec::poweredge_r410_e5620();
    cfg.node_count = 1;
    cfg.smi = SmiConfig::long_every_second();
    cfg.seed = 5;
    System sys{cfg};
    constexpr int kBatches = 2000;
    TaskSpec spec;
    spec.name = "rep";
    spec.node = 0;
    if (streaming) {
      spec.actions = std::make_unique<RepeatActions>(
          Action{Compute{milliseconds(1)}}, kBatches);
    } else {
      spec.actions = std::make_unique<VectorActions>(std::vector<Action>(
          kBatches, Action{Compute{milliseconds(1)}}));
    }
    sys.spawn(std::move(spec));
    sys.run();
    TraceHash h;
    mix_system(h, sys);
    return h.value();
  };
  EXPECT_EQ(run_once(true), run_once(false));
}

TEST(RepeatActionsTest, MaterializedFootprintIsOne) {
  RepeatActions src{Action{Compute{milliseconds(1)}}, 3};
  EXPECT_EQ(src.materialized_actions(), 1);
  int n = 0;
  while (src.next()) ++n;
  EXPECT_EQ(n, 3);
  EXPECT_FALSE(src.next().has_value());
}

// --- SmmAccounting bounded ring ---------------------------------------------

TEST(SmmAccountingRingTest, AggregatesStayExactWhenRingIsBounded) {
  SmmAccounting full{2};
  SmmAccounting capped{2};
  capped.set_ring_capacity(8);
  for (int i = 0; i < 100; ++i) {
    const SmmInterval iv{i % 2, SimTime{i * 1'000'000},
                         SimTime{i * 1'000'000 + (i % 7) * 60'000}};
    full.record(iv);
    capped.record(iv);
  }
  EXPECT_EQ(capped.total_smi_count(), full.total_smi_count());
  EXPECT_EQ(capped.smi_count(0), full.smi_count(0));
  EXPECT_EQ(capped.smi_count(1), full.smi_count(1));
  EXPECT_EQ(capped.residency(0), full.residency(0));
  EXPECT_EQ(capped.biosbits_violations(), full.biosbits_violations());
  EXPECT_EQ(capped.duration_stats().count(), full.duration_stats().count());
  EXPECT_EQ(capped.duration_stats().mean(), full.duration_stats().mean());
  const Histogram hf = full.duration_histogram_ms();
  const Histogram hc = capped.duration_histogram_ms();
  EXPECT_EQ(hc.total(), hf.total());
  for (std::size_t b = 0; b < hf.bucket_count(); ++b) {
    EXPECT_EQ(hc.bucket(b), hf.bucket(b)) << "bucket " << b;
  }
  // The bounded list keeps exactly the trailing window.
  ASSERT_EQ(capped.intervals().size(), 8u);
  EXPECT_EQ(capped.intervals().front().enter, SimTime{92 * 1'000'000});
  EXPECT_EQ(full.intervals().size(), 100u);
}

// --- Engine same-instant lane ------------------------------------------------

TEST(SameInstantLaneTest, NasScheduleIdenticalWithLaneOff) {
  const NasKnob knob{32 * 1024, 0};
  auto run_with_lane = [&](bool lane) {
    const NasJobSpec spec = small_ft();
    System sys = make_nas_system(spec, SmiConfig::long_every_second(), 2);
    sys.engine().set_same_instant_lane(lane);
    const auto placement = block_placement(spec.ranks(), spec.ranks_per_node);
    MpiJobResult result =
        run_mpi_job(sys, build_nas_trace(spec, knob), placement,
                    WorkloadProfile::dense_fp());
    sys.validate();
    TraceHash h;
    h.mix_signed(result.elapsed.ns());
    mix_system(h, sys);
    return h.value();
  };
  EXPECT_EQ(run_with_lane(true), run_with_lane(false));
}

TEST(SameInstantLaneTest, MergePreservesTimeSeqOrderAndCancellation) {
  auto fire_order = [](bool lane) {
    Engine eng;
    eng.set_same_instant_lane(lane);
    std::vector<int> order;
    // Seed a future event whose callback schedules a same-instant storm
    // with interleaved cancellation: heap entries and lane entries at the
    // same timestamp must interleave by seq exactly.
    eng.schedule_at(SimTime{100}, [&] {
      // Scheduled at now: lane candidates (heap entries when lane off).
      eng.schedule_at(SimTime{100}, [&] { order.push_back(1); });
      const EventId victim =
          eng.schedule_at(SimTime{100}, [&] { order.push_back(2); });
      eng.schedule_at(SimTime{100}, [&] {
        order.push_back(3);
        // Nested same-instant wake, scheduled while draining the storm.
        eng.schedule_at(SimTime{100}, [&] { order.push_back(5); });
      });
      eng.schedule_at(SimTime{200}, [&] { order.push_back(6); });
      eng.schedule_at(SimTime{100}, [&] { order.push_back(4); });
      eng.cancel(victim);
    });
    eng.run();
    return order;
  };
  const auto with_lane = fire_order(true);
  EXPECT_EQ(with_lane, fire_order(false));
  EXPECT_EQ(with_lane, (std::vector<int>{1, 3, 4, 5, 6}));
}

TEST(SameInstantLaneTest, PendingDigestSeesLaneEntries) {
  Engine eng;
  std::uint64_t digest_in_callback_lane = 0;
  eng.schedule_at(SimTime{50}, [&] {
    eng.schedule_at(SimTime{50}, [] {});
    digest_in_callback_lane = eng.pending_time_digest();
    eng.stop();
  });
  eng.run();

  Engine ref;
  ref.set_same_instant_lane(false);
  std::uint64_t digest_in_callback_heap = 0;
  ref.schedule_at(SimTime{50}, [&] {
    ref.schedule_at(SimTime{50}, [] {});
    digest_in_callback_heap = ref.pending_time_digest();
    ref.stop();
  });
  ref.run();

  EXPECT_NE(digest_in_callback_lane, 0u);
  EXPECT_EQ(digest_in_callback_lane, digest_in_callback_heap);
}

// --- Work queue uniform representation --------------------------------------

TEST(StreamingEqualityTest, UniformWorkQueueMatchesEvenItems) {
  auto run_queue = [](bool uniform) {
    SystemConfig cfg;
    cfg.machine = MachineSpec::poweredge_r410_e5620();
    cfg.node_count = 1;
    cfg.os.tickless = true;
    cfg.smi = SmiConfig::long_every_second();
    cfg.seed = 13;
    System sys{cfg};
    WorkQueueSpec spec;
    spec.name = "wq";
    spec.workers = 8;
    constexpr int kItems = 500;
    if (uniform) {
      set_even_items(spec, seconds_d(2.0), kItems);
    } else {
      spec.items = even_items(seconds_d(2.0), kItems);
    }
    const WorkQueueResult run = run_work_queue(sys, std::move(spec));
    TraceHash h;
    h.mix_signed(run.finished.ns());
    for (const int n : run.items_per_worker) h.mix_signed(n);
    mix_system(h, sys);
    return h.value();
  };
  EXPECT_EQ(run_queue(true), run_queue(false));
}

}  // namespace
}  // namespace smilab
