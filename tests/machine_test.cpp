// Unit tests for the machine/cluster topology model and sysfs-style CPU
// hotplug, including the paper's specific testbed shapes.
#include <gtest/gtest.h>

#include "smilab/sim/machine.h"

namespace smilab {
namespace {

TEST(MachineSpecTest, PaperTestbedsShape) {
  const MachineSpec wyeast = MachineSpec::wyeast_e5520();
  EXPECT_EQ(wyeast.cores(), 4);
  EXPECT_EQ(wyeast.logical_cpus(), 8);
  EXPECT_DOUBLE_EQ(wyeast.ghz, 2.27);
  EXPECT_DOUBLE_EQ(wyeast.ram_gb, 12.0);

  const MachineSpec r410 = MachineSpec::poweredge_r410_e5620();
  EXPECT_EQ(r410.cores(), 4);
  EXPECT_EQ(r410.logical_cpus(), 8);
  EXPECT_DOUBLE_EQ(r410.ghz, 2.40);
}

TEST(MachineSpecTest, NoHttVariant) {
  MachineSpec spec = MachineSpec::wyeast_e5520();
  spec.threads_per_core = 1;
  EXPECT_EQ(spec.logical_cpus(), 4);
}

TEST(NodeTest, CpuNumberingCoresFirstThenSiblings) {
  // Matches the paper's sysfs sweep: CPUs 0-3 are distinct physical cores,
  // CPUs 4-7 are their HTT siblings.
  const Node node{0, MachineSpec::poweredge_r410_e5620()};
  EXPECT_EQ(node.cpu_count(), 8);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(node.cpu(i).core, i);
    EXPECT_EQ(node.cpu(i).sibling, i + 4);
    EXPECT_EQ(node.cpu(i + 4).core, i);
    EXPECT_EQ(node.cpu(i + 4).sibling, i);
  }
}

TEST(NodeTest, SingleThreadCoresHaveNoSiblings) {
  MachineSpec spec = MachineSpec::wyeast_e5520();
  spec.threads_per_core = 1;
  const Node node{0, spec};
  for (int i = 0; i < node.cpu_count(); ++i) {
    EXPECT_EQ(node.cpu(i).sibling, -1);
  }
}

TEST(NodeTest, HotplugFlagsAndCounts) {
  Node node{0, MachineSpec::poweredge_r410_e5620()};
  EXPECT_EQ(node.online_cpu_count(), 8);
  node.set_online(7, false);
  node.set_online(3, false);
  EXPECT_EQ(node.online_cpu_count(), 6);
  EXPECT_FALSE(node.is_online(7));
  EXPECT_TRUE(node.is_online(0));
  node.set_online(7, true);
  EXPECT_EQ(node.online_cpu_count(), 7);
}

TEST(NodeTest, SetOnlineCpusMatchesPaperSweep) {
  Node node{0, MachineSpec::poweredge_r410_e5620()};
  // "1-4 logical processor cores with all HTT siblings offlined":
  node.set_online_cpus(3);
  EXPECT_EQ(node.online_cpu_count(), 3);
  EXPECT_TRUE(node.is_online(0));
  EXPECT_TRUE(node.is_online(2));
  EXPECT_FALSE(node.is_online(3));
  EXPECT_FALSE(node.is_online(4));  // no sibling online
  // "then selectively onlined the HTT siblings to test 5-8":
  node.set_online_cpus(6);
  EXPECT_TRUE(node.is_online(4));  // sibling of core 0
  EXPECT_TRUE(node.is_online(5));  // sibling of core 1
  EXPECT_FALSE(node.is_online(6));
}

TEST(NodeTest, OnlineSiblingPairsCountAfterSweep) {
  Node node{0, MachineSpec::poweredge_r410_e5620()};
  node.set_online_cpus(5);
  // Exactly one core (core 0) has both hardware threads online.
  int pairs = 0;
  for (int c = 0; c < 4; ++c) {
    if (node.is_online(c) && node.is_online(c + 4)) ++pairs;
  }
  EXPECT_EQ(pairs, 1);
}

TEST(ClusterTest, BuildsHomogeneousNodes) {
  const Cluster cluster{16, MachineSpec::wyeast_e5520()};
  EXPECT_EQ(cluster.node_count(), 16);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(cluster.node(i).id(), i);
    EXPECT_EQ(cluster.node(i).cpu_count(), 8);
  }
}

TEST(ClusterTest, NodesHotplugIndependently) {
  Cluster cluster{2, MachineSpec::wyeast_e5520()};
  cluster.node(0).set_online_cpus(4);
  EXPECT_EQ(cluster.node(0).online_cpu_count(), 4);
  EXPECT_EQ(cluster.node(1).online_cpu_count(), 8);
}

}  // namespace
}  // namespace smilab
