// Tests for the parallel experiment sweep: deterministic collection order,
// inline serial path, exception propagation, and — the property the whole
// PR leans on — bit-equality of swept paper grids at any job count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory_resource>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "smilab/apps/nas/runner.h"
#include "smilab/core/paper_tables.h"
#include "smilab/core/sweep.h"
#include "smilab/trace/action_arena.h"

namespace smilab {
namespace {

TEST(SweepTest, EffectiveJobsResolvesSentinel) {
  EXPECT_EQ(effective_jobs(1), 1);
  EXPECT_EQ(effective_jobs(5), 5);
  EXPECT_GE(effective_jobs(0), 1);   // hardware concurrency, at least 1
  EXPECT_GE(effective_jobs(-3), 1);
}

TEST(SweepTest, MapCollectsInGridOrder) {
  for (const int jobs : {1, 2, 7}) {
    const ExperimentSweep sweep{jobs};
    const std::vector<int> out =
        sweep.map<int>(100, [](int i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
    }
  }
}

TEST(SweepTest, ForEachVisitsEveryCellExactlyOnce) {
  const ExperimentSweep sweep{4};
  std::vector<std::atomic<int>> visits(257);
  sweep.for_each(257, [&](int i) { ++visits[static_cast<std::size_t>(i)]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(SweepTest, JobsOneRunsInlineOnCallingThread) {
  const ExperimentSweep sweep{1};
  const auto caller = std::this_thread::get_id();
  bool all_inline = true;
  sweep.for_each(16, [&](int) {
    if (std::this_thread::get_id() != caller) all_inline = false;
  });
  EXPECT_TRUE(all_inline);
}

TEST(SweepTest, EmptyAndSingleCellGrids) {
  const ExperimentSweep sweep{4};
  EXPECT_TRUE(sweep.map<int>(0, [](int i) { return i; }).empty());
  const auto one = sweep.map<int>(1, [](int i) { return i + 7; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 7);
}

TEST(SweepTest, CellExceptionPropagatesToCaller) {
  for (const int jobs : {1, 3}) {
    const ExperimentSweep sweep{jobs};
    EXPECT_THROW(sweep.for_each(32,
                                [](int i) {
                                  if (i == 13) {
                                    throw std::runtime_error{"cell 13"};
                                  }
                                }),
                 std::runtime_error);
  }
}

TEST(SweepPoolTest, DrainWaitsForAllJobs) {
  SweepPool pool{3};
  EXPECT_EQ(pool.workers(), 3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&done] { ++done; });
  }
  pool.drain();
  EXPECT_EQ(done.load(), 50);
  // The pool stays usable after a drain (it is persistent, not one-shot).
  pool.submit([&done] { ++done; });
  pool.drain();
  EXPECT_EQ(done.load(), 51);
}

TEST(SweepPoolTest, DrainRethrowsFirstJobException) {
  SweepPool pool{2};
  std::atomic<int> done{0};
  pool.submit([] { throw std::runtime_error{"job failed"}; });
  for (int i = 0; i < 8; ++i) {
    pool.submit([&done] { ++done; });  // later jobs are not cancelled
  }
  EXPECT_THROW(pool.drain(), std::runtime_error);
  EXPECT_EQ(done.load(), 8);
  // The error slot is cleared once reported.
  pool.submit([&done] { ++done; });
  EXPECT_NO_THROW(pool.drain());
  EXPECT_EQ(done.load(), 9);
}

TEST(SweepPoolTest, WorkersHoldAWarmArenaScope) {
  // Jobs on a pool worker see an installed ActionArena (not the fallback
  // new_delete_resource), and reset_current() between jobs retains chunk
  // storage — the warm-worker property the serve daemon leans on.
  SweepPool pool{1};
  std::pmr::memory_resource* first = nullptr;
  std::pmr::memory_resource* second = nullptr;
  pool.submit([&first] { first = ActionArena::current(); });
  pool.drain();
  pool.submit([&second] { second = ActionArena::current(); });
  pool.drain();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first, second);  // same thread-lifetime arena across jobs
  EXPECT_NE(first, std::pmr::new_delete_resource());
}

// The headline bit-equality claim: a NAS cell (three SMM regimes x trials)
// produces identical doubles whether swept serially or across 4 threads.
TEST(SweepTest, NasCellBitEqualAcrossJobCounts) {
  const NasJobSpec spec{NasBenchmark::kEP, NasClass::kA, 2, 1};
  NasRunOptions serial;
  serial.trials = 2;
  serial.jobs = 1;
  NasRunOptions parallel = serial;
  parallel.jobs = 4;
  const NasCellResult a = run_nas_cell(spec, serial);
  const NasCellResult b = run_nas_cell(spec, parallel);
  EXPECT_EQ(a.smm0.mean(), b.smm0.mean());
  EXPECT_EQ(a.smm1.mean(), b.smm1.mean());
  EXPECT_EQ(a.smm2.mean(), b.smm2.mean());
  EXPECT_EQ(a.smm0.stddev(), b.smm0.stddev());
  EXPECT_EQ(a.smm2.max(), b.smm2.max());
}

// A Table-2 sub-grid rendered to text must be byte-identical at any job
// count — the exact guarantee the bench binaries advertise for --jobs.
TEST(SweepTest, Table2SubGridBytesIdenticalAcrossJobCounts) {
  NasRunOptions serial;
  serial.trials = 2;
  serial.jobs = 1;
  NasRunOptions parallel = serial;
  parallel.jobs = 4;
  const std::string a =
      build_nas_table(NasBenchmark::kEP, {1, 2}, 1, serial).to_aligned_text();
  const std::string b =
      build_nas_table(NasBenchmark::kEP, {1, 2}, 1, parallel).to_aligned_text();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace smilab
