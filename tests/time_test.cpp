// Unit tests for the time primitives: SimTime/SimDuration arithmetic,
// jiffy conversion, TSC behaviour, and the deterministic RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "smilab/time/rng.h"
#include "smilab/time/sim_time.h"
#include "smilab/time/tsc.h"

namespace smilab {
namespace {

TEST(SimTimeTest, DefaultIsZero) {
  EXPECT_EQ(SimTime{}.ns(), 0);
  EXPECT_EQ(SimTime::zero(), SimTime{});
}

TEST(SimTimeTest, ArithmeticRoundTrips) {
  const SimTime t = SimTime::zero() + milliseconds(5);
  EXPECT_EQ(t.ns(), 5'000'000);
  EXPECT_EQ((t - SimTime::zero()).ns(), 5'000'000);
  EXPECT_EQ((t - milliseconds(2)).ns(), 3'000'000);
}

TEST(SimTimeTest, ComparisonIsTotalOrder) {
  const SimTime a{10};
  const SimTime b{20};
  EXPECT_LT(a, b);
  EXPECT_LE(a, a);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, SimTime{10});
}

TEST(SimDurationTest, UnitConstructors) {
  EXPECT_EQ(nanoseconds(7).ns(), 7);
  EXPECT_EQ(microseconds(7).ns(), 7'000);
  EXPECT_EQ(milliseconds(7).ns(), 7'000'000);
  EXPECT_EQ(seconds(7).ns(), 7'000'000'000);
  EXPECT_EQ(seconds_d(0.5).ns(), 500'000'000);
}

TEST(SimDurationTest, JiffyIsOneMillisecond) {
  // The paper's systems: 1 jiffy == 1 ms (CONFIG_HZ=1000).
  EXPECT_EQ(kJiffy.ns(), 1'000'000);
  EXPECT_EQ(jiffies(1000).ns(), seconds(1).ns());
}

TEST(SimDurationTest, SecondsConversion) {
  EXPECT_DOUBLE_EQ(milliseconds(1500).seconds(), 1.5);
  EXPECT_DOUBLE_EQ(SimDuration{-500'000'000}.seconds(), -0.5);
}

TEST(SimDurationTest, ScalarOps) {
  EXPECT_EQ((milliseconds(3) * 4).ns(), milliseconds(12).ns());
  EXPECT_EQ((4 * milliseconds(3)).ns(), milliseconds(12).ns());
  EXPECT_EQ((milliseconds(12) / 4).ns(), milliseconds(3).ns());
  EXPECT_DOUBLE_EQ(milliseconds(105) / seconds(1), 0.105);
}

TEST(SimDurationTest, ScaleRoundsToNearest) {
  EXPECT_EQ(scale(nanoseconds(10), 0.55).ns(), 6);  // 5.5 -> 6
  EXPECT_EQ(scale(nanoseconds(10), 0.54).ns(), 5);  // 5.4 -> 5
  EXPECT_EQ(scale(milliseconds(100), 1.0).ns(), milliseconds(100).ns());
  EXPECT_EQ(scale(nanoseconds(-10), 0.55).ns(), -6);
}

TEST(SimDurationTest, ToStringPicksUnits) {
  EXPECT_EQ(to_string(seconds(2)), "2.000s");
  EXPECT_EQ(to_string(milliseconds(105)), "105.000ms");
  EXPECT_EQ(to_string(microseconds(150)), "150.000us");
  EXPECT_EQ(to_string(nanoseconds(42)), "42ns");
}

TEST(TscTest, CountsAtConfiguredFrequency) {
  const Tsc tsc{2.27};  // E5520
  EXPECT_EQ(tsc.read(SimTime::zero()), 0u);
  const auto one_second = tsc.read(SimTime::zero() + seconds(1));
  EXPECT_NEAR(static_cast<double>(one_second), 2.27e9, 1.0);
}

TEST(TscTest, KeepsCountingMonotonically) {
  const Tsc tsc{2.40};
  std::uint64_t prev = 0;
  for (int ms = 1; ms <= 1000; ms += 50) {
    const auto v = tsc.read(SimTime::zero() + milliseconds(ms));
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(TscTest, CycleToDurationRoundTrip) {
  const Tsc tsc{2.27};
  const auto cycles = tsc.read(SimTime::zero() + milliseconds(105));
  EXPECT_NEAR(tsc.to_duration(cycles).seconds(), 0.105, 1e-9);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntStaysInBounds) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng{11};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDurationInBand) {
  // The long-SMI band from the paper: 100-110 ms.
  Rng rng{13};
  for (int i = 0; i < 1000; ++i) {
    const auto d = rng.uniform_duration(milliseconds(100), milliseconds(110));
    EXPECT_GE(d, milliseconds(100));
    EXPECT_LT(d, milliseconds(110));
  }
}

TEST(RngTest, UniformDurationDegenerateBand) {
  Rng rng{13};
  EXPECT_EQ(rng.uniform_duration(milliseconds(5), milliseconds(5)),
            milliseconds(5));
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng{17};
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng{19};
  double sum = 0, sum2 = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ForkedStreamsAreIndependentOfConsumption) {
  // Forking must depend only on (origin seed, salt), not on how much the
  // parent stream has been consumed — this is what keeps adding an RNG
  // consumer from perturbing every other stream.
  Rng parent1{99};
  Rng parent2{99};
  parent2.next_u64();
  parent2.next_u64();
  Rng childA = parent1.fork(123);
  Rng childB = parent2.fork(123);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(childA.next_u64(), childB.next_u64());
}

TEST(RngTest, ForkWithDifferentSaltsDiffer) {
  Rng parent{99};
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LE(same, 1);
}

TEST(RngTest, StreamLabelStableHash) {
  EXPECT_EQ(stream_label("smi.node.0"), stream_label("smi.node.0"));
  EXPECT_NE(stream_label("smi.node.0"), stream_label("smi.node.1"));
}

}  // namespace
}  // namespace smilab
