// Tests for the collective lowering algorithms: structural checks on the
// generated traces plus end-to-end execution on the System (no deadlock,
// sane completion times, correct dependency behaviour under injected delay).
#include <gtest/gtest.h>

#include <map>
#include <variant>

#include "smilab/mpi/collectives.h"
#include "smilab/mpi/job.h"
#include "smilab/sim/system.h"

namespace smilab {
namespace {

// Count messages each rank sends/receives in its trace (SendRecv counts as
// one of each).
struct TraceCounts {
  int sends = 0;
  int recvs = 0;
  std::int64_t bytes_sent = 0;
};

TraceCounts count_trace(const RankProgram& rp) {
  TraceCounts counts;
  for (const auto& action : rp.actions()) {
    if (const auto* s = std::get_if<Send>(&action)) {
      counts.sends += 1;
      counts.bytes_sent += s->bytes;
    } else if (std::get_if<Recv>(&action)) {
      counts.recvs += 1;
    } else if (const auto* sr = std::get_if<SendRecv>(&action)) {
      counts.sends += 1;
      counts.recvs += 1;
      counts.bytes_sent += sr->send_bytes;
    }
  }
  return counts;
}

/// Run the programs on a fresh cluster, one rank per node.
SimDuration execute(std::vector<RankProgram> programs, SmiConfig smi = {},
                    std::uint64_t seed = 1) {
  const int p = static_cast<int>(programs.size());
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = p;
  cfg.net = NetworkParams::wyeast();
  cfg.smi = smi;
  cfg.seed = seed;
  System sys{cfg};
  std::vector<int> placement(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) placement[static_cast<std::size_t>(r)] = r;
  return run_mpi_job(sys, std::move(programs), placement, WorkloadProfile{})
      .elapsed;
}

class CollectiveSizes : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(PowersAndOdd, CollectiveSizes,
                         ::testing::Values(2, 3, 4, 5, 8, 16));

TEST_P(CollectiveSizes, BarrierCompletesWithoutDeadlock) {
  const int p = GetParam();
  auto programs = make_rank_programs(p);
  TagAllocator tags;
  barrier(programs, tags);
  const SimDuration elapsed = execute(std::move(programs));
  EXPECT_GT(elapsed, SimDuration::zero());
  EXPECT_LT(elapsed, milliseconds(50));
}

TEST_P(CollectiveSizes, BroadcastReachesEveryRank) {
  const int p = GetParam();
  auto programs = make_rank_programs(p);
  TagAllocator tags;
  broadcast(programs, /*root=*/0, 4096, tags);
  // Structural: every non-root receives exactly once; total sends = p-1.
  int total_sends = 0;
  for (const auto& rp : programs) {
    const TraceCounts counts = count_trace(rp);
    total_sends += counts.sends;
    if (rp.rank() == 0) {
      EXPECT_EQ(counts.recvs, 0);
    } else {
      EXPECT_EQ(counts.recvs, 1);
    }
  }
  EXPECT_EQ(total_sends, p - 1);
  execute(std::move(programs));
}

TEST_P(CollectiveSizes, BroadcastNonZeroRoot) {
  const int p = GetParam();
  const int root = p - 1;
  auto programs = make_rank_programs(p);
  TagAllocator tags;
  broadcast(programs, root, 4096, tags);
  for (const auto& rp : programs) {
    const TraceCounts counts = count_trace(rp);
    EXPECT_EQ(counts.recvs, rp.rank() == root ? 0 : 1);
  }
  execute(std::move(programs));
}

TEST_P(CollectiveSizes, ReduceGathersToRoot) {
  const int p = GetParam();
  auto programs = make_rank_programs(p);
  TagAllocator tags;
  reduce(programs, /*root=*/0, 4096, tags);
  int total_sends = 0;
  for (const auto& rp : programs) {
    const TraceCounts counts = count_trace(rp);
    total_sends += counts.sends;
    if (rp.rank() == 0) EXPECT_EQ(counts.sends, 0);
    else EXPECT_EQ(counts.sends, 1);  // every non-root sends exactly once
  }
  EXPECT_EQ(total_sends, p - 1);
  execute(std::move(programs));
}

TEST_P(CollectiveSizes, AllreduceCompletesAndIsSymmetric) {
  const int p = GetParam();
  auto programs = make_rank_programs(p);
  TagAllocator tags;
  allreduce(programs, 1024, tags);
  if (is_power_of_two(p)) {
    // Recursive doubling: log2(p) sendrecvs per rank.
    int rounds = 0;
    for (int span = 1; span < p; span <<= 1) ++rounds;
    for (const auto& rp : programs) {
      const TraceCounts counts = count_trace(rp);
      EXPECT_EQ(counts.sends, rounds);
      EXPECT_EQ(counts.recvs, rounds);
    }
  }
  execute(std::move(programs));
}

TEST_P(CollectiveSizes, AllgatherRingMovesAllBlocks) {
  const int p = GetParam();
  auto programs = make_rank_programs(p);
  TagAllocator tags;
  allgather(programs, 2048, tags);
  for (const auto& rp : programs) {
    const TraceCounts counts = count_trace(rp);
    EXPECT_EQ(counts.sends, p - 1);
    EXPECT_EQ(counts.recvs, p - 1);
  }
  execute(std::move(programs));
}

TEST_P(CollectiveSizes, AlltoallExchangesWithEveryPeer) {
  const int p = GetParam();
  auto programs = make_rank_programs(p);
  TagAllocator tags;
  alltoall(programs, 8192, tags);
  for (const auto& rp : programs) {
    const TraceCounts counts = count_trace(rp);
    EXPECT_EQ(counts.sends, p - 1);
    EXPECT_EQ(counts.recvs, p - 1);
    EXPECT_EQ(counts.bytes_sent, 8192LL * (p - 1));
  }
  execute(std::move(programs));
}

TEST_P(CollectiveSizes, GatherFunnelsToRoot) {
  const int p = GetParam();
  auto programs = make_rank_programs(p);
  TagAllocator tags;
  gather(programs, /*root=*/0, 1000, tags);
  std::int64_t root_received_bytes = 0;
  int total_sends = 0;
  for (const auto& rp : programs) {
    const TraceCounts counts = count_trace(rp);
    total_sends += counts.sends;
    if (rp.rank() == 0) {
      EXPECT_EQ(counts.sends, 0);
    } else {
      EXPECT_EQ(counts.sends, 1);  // each non-root forwards exactly once
      root_received_bytes += 0;    // (bytes move through the tree)
    }
  }
  EXPECT_EQ(total_sends, p - 1);
  // Conservation: the payload entering the root's subtree equals the data
  // of all non-root ranks plus forwarded copies; the root's direct
  // children together carry (p-1) * bytes.
  std::int64_t into_root = 0;
  for (const auto& rp : programs) {
    for (const auto& action : rp.actions()) {
      if (const auto* s = std::get_if<Send>(&action)) {
        if (s->dst_rank == 0) into_root += s->bytes;
      }
    }
  }
  EXPECT_EQ(into_root, 1000LL * (p - 1));
  execute(std::move(programs));
}

TEST_P(CollectiveSizes, ScatterMirrorsGather) {
  const int p = GetParam();
  auto programs = make_rank_programs(p);
  TagAllocator tags;
  scatter(programs, /*root=*/0, 1000, tags);
  std::int64_t out_of_root = 0;
  for (const auto& rp : programs) {
    const TraceCounts counts = count_trace(rp);
    if (rp.rank() == 0) {
      EXPECT_EQ(counts.recvs, 0);
    } else {
      EXPECT_EQ(counts.recvs, 1);  // every rank gets its block exactly once
    }
    if (rp.rank() == 0) out_of_root = counts.bytes_sent;
  }
  EXPECT_EQ(out_of_root, 1000LL * (p - 1));
  execute(std::move(programs));
}

TEST_P(CollectiveSizes, ReduceScatterCompletes) {
  const int p = GetParam();
  auto programs = make_rank_programs(p);
  TagAllocator tags;
  reduce_scatter(programs, 512, tags);
  if (is_power_of_two(p) && p > 1) {
    // Recursive halving: total bytes sent per rank = 512 * (p-1).
    for (const auto& rp : programs) {
      EXPECT_EQ(count_trace(rp).bytes_sent, 512LL * (p - 1));
    }
  }
  execute(std::move(programs));
}

TEST_P(CollectiveSizes, ScanIsALinearChain) {
  const int p = GetParam();
  auto programs = make_rank_programs(p);
  TagAllocator tags;
  scan(programs, 256, tags);
  for (const auto& rp : programs) {
    const TraceCounts counts = count_trace(rp);
    EXPECT_EQ(counts.recvs, rp.rank() == 0 ? 0 : 1);
    EXPECT_EQ(counts.sends, rp.rank() == p - 1 ? 0 : 1);
  }
  execute(std::move(programs));
}

TEST(CollectiveDependencyTest, ScanLatencyGrowsLinearlyWithRanks) {
  auto chain_time = [](int p) {
    auto programs = make_rank_programs(p);
    TagAllocator tags;
    scan(programs, 64, tags);
    return execute(std::move(programs));
  };
  const SimDuration four = chain_time(4);
  const SimDuration sixteen = chain_time(16);
  // A linear dependency spine: ~4x the hops, ~4x the time (within slack).
  EXPECT_GT(sixteen.ns(), four.ns() * 3);
  EXPECT_LT(sixteen.ns(), four.ns() * 6);
}

TEST(CollectiveAlgebraTest, SingleRankCollectivesAreEmpty) {
  auto programs = make_rank_programs(1);
  TagAllocator tags;
  barrier(programs, tags);
  broadcast(programs, 0, 1024, tags);
  reduce(programs, 0, 1024, tags);
  allreduce(programs, 1024, tags);
  allgather(programs, 1024, tags);
  alltoall(programs, 1024, tags);
  gather(programs, 0, 1024, tags);
  scatter(programs, 0, 1024, tags);
  reduce_scatter(programs, 1024, tags);
  scan(programs, 1024, tags);
  EXPECT_EQ(programs[0].size(), 0u);
}

TEST(CollectiveAlgebraTest, PowerOfTwoPredicate) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(16));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(12));
  EXPECT_FALSE(is_power_of_two(-4));
}

TEST(CollectiveDependencyTest, BarrierWaitsForSlowestRank) {
  // Rank 2 computes 100ms before the barrier; everyone else must finish no
  // earlier than rank 2's compute plus wire time.
  const int p = 4;
  auto programs = make_rank_programs(p);
  for (auto& rp : programs) {
    if (rp.rank() == 2) rp.compute(milliseconds(100));
  }
  TagAllocator tags;
  barrier(programs, tags);
  const SimDuration elapsed = execute(std::move(programs));
  EXPECT_GT(elapsed, milliseconds(100));
  EXPECT_LT(elapsed, milliseconds(110));
}

TEST(CollectiveDependencyTest, AlltoallSerializesOnSharedNics) {
  // Same total exchange with 4 ranks on 4 nodes vs 4 ranks on 1 node but
  // with inter-node-like volumes: shared NICs do not apply intra-node, so
  // instead compare 8 ranks across 2 nodes vs 8 ranks across 8 nodes.
  auto build = [](int p) {
    auto programs = make_rank_programs(p);
    TagAllocator tags;
    alltoall(programs, 1 << 18, tags);
    return programs;
  };
  auto run_with_placement = [&](int ranks_per_node) {
    const int p = 8;
    SystemConfig cfg;
    cfg.machine = MachineSpec::wyeast_e5520();
    cfg.node_count = node_count_for(p, ranks_per_node);
    cfg.net = NetworkParams::wyeast();
    cfg.seed = 3;
    System sys{cfg};
    return run_mpi_job(sys, build(p), block_placement(p, ranks_per_node),
                       WorkloadProfile{})
        .elapsed;
  };
  // 4 ranks sharing each NIC should be slower than 1 rank per node.
  EXPECT_GT(run_with_placement(4), run_with_placement(1));
}

TEST(CollectiveNoiseTest, LongSmiDelaysPropagateThroughAlltoall) {
  // A chain of alltoalls across 8 nodes: long SMIs with desynchronized
  // phases must stretch the job by more than the single-node duty cycle
  // (~10.5%), because every exchange waits for the most recently frozen
  // node (max-of-N amplification).
  auto build = [] {
    auto programs = make_rank_programs(8);
    TagAllocator tags;
    for (int iter = 0; iter < 20; ++iter) {
      for (auto& rp : programs) rp.compute(milliseconds(40));
      alltoall(programs, 1 << 16, tags);
    }
    return programs;
  };
  const SimDuration base = execute(build());
  const SimDuration noisy = execute(build(), SmiConfig::long_every_second(), 9);
  // With 8 desynchronized nodes and TCP recovery, every exchange waits for
  // the most recently frozen node: amplification is a multiple of the
  // single-node ~10.5% duty cycle, bounded by the all-nodes-always-frozen
  // worst case.
  const double slowdown = noisy / base;
  EXPECT_GT(slowdown, 1.2);
  EXPECT_LT(slowdown, 4.0);
}

}  // namespace
}  // namespace smilab
