// Hang/deadlock diagnostics: the wait-for-graph detector behind
// System::try_run, the hang watchdog under periodic SMI noise, max_sim_time
// post-mortems, structured configuration errors, and the CLI exit codes.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "smilab/cli/commands.h"
#include "smilab/mc/corpus.h"
#include "smilab/sim/choice_hooks.h"
#include "smilab/sim/system.h"

namespace smilab {
namespace {

SystemConfig base_config(int nodes = 1) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::poweredge_r410_e5620();
  cfg.node_count = nodes;
  cfg.seed = 42;
  return cfg;
}

/// Two ranks exchange eager sends whose tags never match the receives: the
/// classic seeded tag-mismatch deadlock. Both sends complete (eager), both
/// messages land unmatched, both ranks block in Recv forever.
void spawn_tag_mismatch(System& sys) {
  const GroupId g = sys.create_group(2);
  {
    std::vector<Action> prog;
    prog.push_back(Send{1, 1024, 7});
    prog.push_back(Recv{1, 100});  // rank 1 only ever sends tag 7
    sys.spawn_member(g, 0, TaskSpec::with_actions("r0", 0, std::move(prog)));
  }
  {
    std::vector<Action> prog;
    prog.push_back(Send{0, 1024, 7});
    prog.push_back(Recv{0, 200});  // rank 0 only ever sends tag 7
    sys.spawn_member(g, 1, TaskSpec::with_actions("r1", 0, std::move(prog)));
  }
}

TEST(DiagnosisTest, TagMismatchDeadlockIsFullyDiagnosed) {
  System sys{base_config()};
  spawn_tag_mismatch(sys);
  const RunResult result = sys.try_run();  // must not throw
  EXPECT_EQ(result.status, RunStatus::kDeadlock);
  EXPECT_FALSE(result.ok());
  const RunDiagnosis& d = result.diagnosis;
  ASSERT_EQ(d.ranks.size(), 2u);
  for (const RankDiagnosis& r : d.ranks) {
    EXPECT_EQ(r.op, BlockedOp::kRecv);
    EXPECT_EQ(r.peer_rank, 1 - r.rank);
    EXPECT_EQ(r.tag, r.rank == 0 ? 100 : 200);
    // The mismatched eager send arrived and sits unmatched in the queue —
    // the classic symptom distinguishing a tag bug from a lost message.
    EXPECT_EQ(r.unexpected_depth, 1u);
    EXPECT_FALSE(r.peer_failed);
  }
  // r0 -> r1 -> r0 (entry repeated at the end).
  ASSERT_EQ(d.cycle.size(), 3u);
  EXPECT_EQ(d.cycle.front().value, d.cycle.back().value);
  EXPECT_EQ(d.in_flight_messages, 0);
}

TEST(DiagnosisTest, RunThrowsSimulationErrorWithDiagnosis) {
  System sys{base_config()};
  spawn_tag_mismatch(sys);
  try {
    sys.run();
    FAIL() << "expected SimulationError";
  } catch (const SimulationError& e) {
    EXPECT_EQ(e.status(), RunStatus::kDeadlock);
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos);
    EXPECT_NE(what.find("r0"), std::string::npos);
    EXPECT_NE(what.find("wait-for cycle"), std::string::npos);
  }
}

TEST(DiagnosisTest, WatchdogCatchesDeadlockUnderSmiNoiseBeforeMaxSimTime) {
  // With the SMI controller armed the event queue never drains, so the
  // empty-queue deadlock check can't fire; only the hang watchdog stops
  // the run — and it must do so in ~hang_timeout of simulated time, not
  // grind on to max_sim_time.
  SystemConfig cfg = base_config();
  cfg.smi = SmiConfig::long_every_second();
  cfg.hang_timeout = seconds(2);
  cfg.max_sim_time = seconds(3600);
  System sys{cfg};
  spawn_tag_mismatch(sys);
  const RunResult result = sys.try_run();
  // The watchdog fired as a hang; the wait-for cycle upgrades it.
  EXPECT_EQ(result.status, RunStatus::kDeadlock);
  ASSERT_EQ(result.diagnosis.cycle.size(), 3u);
  EXPECT_LT(result.diagnosis.sim_now.seconds(), 10.0);
  ASSERT_EQ(result.diagnosis.ranks.size(), 2u);
  EXPECT_EQ(result.diagnosis.ranks[0].op, BlockedOp::kRecv);
}

TEST(DiagnosisTest, CircularRendezvousSendsDiagnoseAsAckWaitCycle) {
  // Both ranks issue blocking sends above the rendezvous threshold and
  // neither ever posts the matching receive: each waits for an ack only
  // the other's progress could produce. The classic head-to-head
  // blocking-send deadlock.
  System sys{base_config(2)};
  const GroupId g = sys.create_group(2);
  const std::int64_t big = 256 * 1024;  // > 64 KiB rendezvous threshold
  for (int r = 0; r < 2; ++r) {
    std::vector<Action> prog;
    prog.push_back(Send{1 - r, big, 4});
    prog.push_back(Recv{1 - r, 4});
    sys.spawn_member(
        g, r, TaskSpec::with_actions("s" + std::to_string(r), r, std::move(prog)));
  }
  const RunResult result = sys.try_run();
  EXPECT_EQ(result.status, RunStatus::kDeadlock);
  const RunDiagnosis& d = result.diagnosis;
  ASSERT_EQ(d.ranks.size(), 2u);
  for (const RankDiagnosis& r : d.ranks) {
    EXPECT_EQ(r.op, BlockedOp::kAckWait);
    EXPECT_EQ(r.peer_rank, 1 - r.rank);
    EXPECT_EQ(r.tag, 4);
  }
  ASSERT_EQ(d.cycle.size(), 3u);
  EXPECT_EQ(d.cycle.front().value, d.cycle.back().value);
}

TEST(DiagnosisTest, NoFalseHangOnLongComputeOrSleep) {
  // A long compute and a long sleep make no "progress" for far longer than
  // hang_timeout, but neither is comm-blocked — the watchdog must not fire.
  SystemConfig cfg = base_config();
  cfg.smi = SmiConfig::long_every_second();  // keeps events flowing
  cfg.hang_timeout = seconds(1);
  System sys{cfg};
  std::vector<Action> prog;
  prog.push_back(Compute{seconds(20)});
  prog.push_back(Sleep{seconds(5)});
  const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, std::move(prog)));
  const RunResult result = sys.try_run();
  EXPECT_TRUE(result.ok()) << result.to_string();
  EXPECT_TRUE(sys.task_stats(id).finished);
}

TEST(DiagnosisTest, MaxSimTimeReportsUnfinishedTasks) {
  SystemConfig cfg = base_config();
  cfg.smi = SmiConfig::long_every_second();  // periodic events to step on
  cfg.max_sim_time = seconds(5);
  cfg.hang_timeout = SimDuration::zero();  // isolate the time-ceiling path
  System sys{cfg};
  std::vector<Action> prog;
  prog.push_back(Compute{seconds(3600)});
  sys.spawn(TaskSpec::with_actions("marathon", 0, std::move(prog)));
  const RunResult result = sys.try_run();
  EXPECT_EQ(result.status, RunStatus::kMaxSimTime);
  ASSERT_EQ(result.diagnosis.ranks.size(), 1u);
  EXPECT_EQ(result.diagnosis.ranks[0].name, "marathon");
  EXPECT_EQ(result.diagnosis.ranks[0].op, BlockedOp::kNone);  // computing
  const std::string report = result.to_string();
  EXPECT_NE(report.find("max_sim_time"), std::string::npos);
  EXPECT_NE(report.find("marathon"), std::string::npos);
}

TEST(DiagnosisTest, NoOnlineCpuIsAStructuredConfigError) {
  System sys{base_config()};
  Node& node = sys.cluster().node(0);
  for (int i = 0; i < node.cpu_count(); ++i) node.set_online(i, false);
  std::vector<Action> prog;
  prog.push_back(Compute{seconds(1)});
  try {
    sys.spawn(TaskSpec::with_actions("t", 0, std::move(prog)));
    FAIL() << "expected SimulationError";
  } catch (const SimulationError& e) {
    EXPECT_EQ(e.status(), RunStatus::kConfigError);
    const std::string what = e.what();
    EXPECT_NE(what.find("node 0"), std::string::npos);
    EXPECT_NE(what.find("0 of "), std::string::npos);
    EXPECT_NE(what.find("mask 0x0"), std::string::npos);
  }
}

TEST(DiagnosisTest, CliMapsSimulationFaultsToExitCode3) {
  const char* argv[] = {"smilab", "faults",          "--nodes=4",
                        "--crash=2:50", "--hang-timeout-s=2"};
  std::ostringstream out, err;
  const int rc = run_cli(5, argv, out, err);
  EXPECT_EQ(rc, 3);
  // The diagnosis reaches the user on stderr.
  EXPECT_NE(err.str().find("deadlock"), std::string::npos);
  EXPECT_NE(err.str().find("peer task failed"), std::string::npos);
}

TEST(DiagnosisTest, CliMapsUsageErrorsToExitCode2) {
  {
    const char* argv[] = {"smilab", "faults", "--freeze=banana"};
    std::ostringstream out, err;
    EXPECT_EQ(run_cli(3, argv, out, err), 2);
  }
  {
    const char* argv[] = {"smilab", "faults", "--no-such-flag=1"};
    std::ostringstream out, err;
    EXPECT_EQ(run_cli(3, argv, out, err), 2);
  }
}

TEST(DiagnosisTest, CliFaultFlagsAcceptCommaSeparatedSpecLists) {
  // The option parser is last-wins for repeated flags, so the comma list
  // is the only way to put two faults of one kind in a single command.
  const char* argv[] = {"smilab", "faults", "--nodes=2", "--iters=50",
                        "--freeze=0:5:30,1:10:30"};
  std::ostringstream out, err;
  EXPECT_EQ(run_cli(5, argv, out, err), 0) << err.str();
  EXPECT_NE(out.str().find("FREEZE node 0"), std::string::npos);
  EXPECT_NE(out.str().find("FREEZE node 1"), std::string::npos);
  {
    const char* argv2[] = {"smilab", "faults", "--freeze=0:50:100,banana"};
    std::ostringstream o2, e2;
    EXPECT_EQ(run_cli(3, argv2, o2, e2), 2);
    EXPECT_NE(e2.str().find("banana"), std::string::npos);
  }
}

// --- Enriched wait-for reports on the shared mc fixtures ---------------------
//
// The model checker and the diagnosis must agree on what a wedge looks
// like, so these tests drive the SAME fixture programs the mc corpus pins
// (src/smilab/mc/corpus.h) and assert the enriched per-rank fields.

TEST(DiagnosisTest, SharedSendSendFixtureDiagnosesAsAckWaitCycle) {
  SystemConfig cfg = base_config(2);
  System sys{cfg};
  mc::spawn_sendsend_cycle(sys);
  const RunResult result = sys.try_run();
  EXPECT_EQ(result.status, RunStatus::kDeadlock);
  const RunDiagnosis& d = result.diagnosis;
  ASSERT_EQ(d.ranks.size(), 2u);
  for (const RankDiagnosis& r : d.ranks) {
    EXPECT_EQ(r.op, BlockedOp::kAckWait);
    EXPECT_EQ(r.peer_rank, 1 - r.rank);
    EXPECT_EQ(r.tag, 4);
    EXPECT_FALSE(r.any_source);
  }
  ASSERT_EQ(d.cycle.size(), 3u);
}

TEST(DiagnosisTest, WaitAllWedgeListsItsOpenHandles) {
  System sys{base_config()};
  mc::spawn_waitall_never(sys);
  const RunResult result = sys.try_run();
  EXPECT_EQ(result.status, RunStatus::kDeadlock);
  const RunDiagnosis& d = result.diagnosis;
  ASSERT_EQ(d.ranks.size(), 1u);  // the silent rank finished
  const RankDiagnosis& r = d.ranks[0];
  EXPECT_EQ(r.op, BlockedOp::kWaitAll);
  EXPECT_EQ(r.incomplete_handles, 1u);
  ASSERT_EQ(r.pending_handles.size(), 1u);
  EXPECT_EQ(r.pending_handles[0].id, 0);
  EXPECT_FALSE(r.pending_handles[0].is_send);
  EXPECT_EQ(r.pending_handles[0].peer_rank, 1);
  EXPECT_EQ(r.pending_handles[0].tag, 5);
  EXPECT_FALSE(r.pending_handles[0].any_source);
  const std::string report = result.to_string();
  EXPECT_NE(report.find("open handles:"), std::string::npos) << report;
  EXPECT_NE(report.find("[h0 recv<-1 tag=5]"), std::string::npos) << report;
}

/// Forces the non-canonical branch of every wildcard match — the schedule
/// that starves the starvation fixture's specific receive.
class TakeSecondMatch final : public SchedulePolicy {
 public:
  std::size_t choose(ChoiceKind kind, std::size_t n) override {
    return kind == ChoiceKind::kAnySourceMatch && n > 1 ? 1 : 0;
  }
};

TEST(DiagnosisTest, StarvedReceiveShowsTheUnmatchedQueueSample) {
  // Canonically this program completes; under the alternative wildcard
  // match rank 1's message is consumed by the wildcard and rank 0's
  // specific Recv(src=1) starves while rank 2's send sits queued. The
  // report must show that stranded message — it IS the bug explanation.
  System sys{base_config()};
  mc::spawn_anysource_starve(sys);
  TakeSecondMatch policy;
  sys.set_schedule_policy(&policy);
  const RunResult result = sys.try_run();
  EXPECT_EQ(result.status, RunStatus::kDeadlock);
  const RunDiagnosis& d = result.diagnosis;
  ASSERT_EQ(d.ranks.size(), 1u);
  const RankDiagnosis& r = d.ranks[0];
  EXPECT_EQ(r.op, BlockedOp::kRecv);
  EXPECT_EQ(r.peer_rank, 1);
  EXPECT_FALSE(r.any_source);
  EXPECT_EQ(r.unexpected_depth, 1u);
  ASSERT_EQ(r.unexpected_sample.size(), 1u);
  EXPECT_EQ(r.unexpected_sample[0].src_rank, 2);
  EXPECT_EQ(r.unexpected_sample[0].tag, 5);
  EXPECT_EQ(r.unexpected_sample[0].bytes, 1024);
  const std::string report = result.to_string();
  EXPECT_NE(report.find("queued unmatched (arrival order): [src=2 tag=5"),
            std::string::npos)
      << report;
}

TEST(DiagnosisTest, BlockedWildcardReceiveIsFlaggedAnySource) {
  System sys{base_config()};
  const GroupId g = sys.create_group(2);
  {
    std::vector<Action> prog;
    prog.push_back(Recv{kAnySource, 9});
    sys.spawn_member(g, 0, TaskSpec::with_actions("w", 0, std::move(prog)));
  }
  {
    std::vector<Action> prog;
    prog.push_back(Compute{milliseconds(1)});  // never sends
    sys.spawn_member(g, 1, TaskSpec::with_actions("q", 0, std::move(prog)));
  }
  const RunResult result = sys.try_run();
  EXPECT_EQ(result.status, RunStatus::kDeadlock);
  ASSERT_EQ(result.diagnosis.ranks.size(), 1u);
  EXPECT_TRUE(result.diagnosis.ranks[0].any_source);
  EXPECT_NE(result.to_string().find("ANY_SOURCE"), std::string::npos);
}

TEST(DiagnosisTest, CliCheckReplayMapsWedgeToExitCode3) {
  // The worked example from the README: replaying the starvation schedule
  // wedges, prints the diagnosis on stderr, and exits 3.
  const char* argv[] = {"smilab", "check", "--program=anysource-starve",
                        "--replay=a1/2"};
  std::ostringstream out, err;
  EXPECT_EQ(run_cli(4, argv, out, err), 3);
  EXPECT_NE(out.str().find("deadlock"), std::string::npos) << out.str();
  EXPECT_NE(err.str().find("queued unmatched"), std::string::npos)
      << err.str();
  // A clean program explores to exit 0; garbage tokens are usage errors.
  {
    const char* argv2[] = {"smilab", "check", "--program=pingpong"};
    std::ostringstream o2, e2;
    EXPECT_EQ(run_cli(3, argv2, o2, e2), 0) << e2.str();
  }
  {
    const char* argv3[] = {"smilab", "check", "--program=pingpong",
                           "--replay=bogus"};
    std::ostringstream o3, e3;
    EXPECT_EQ(run_cli(4, argv3, o3, e3), 2);
  }
}

TEST(DiagnosisTest, CliFaultsCommandSucceedsOnSurvivableFaults) {
  const char* argv[] = {"smilab",        "faults",    "--nodes=2",
                        "--iters=20",    "--drop=0.2"};
  std::ostringstream out, err;
  EXPECT_EQ(run_cli(5, argv, out, err), 0) << err.str();
  EXPECT_NE(out.str().find("retransmission"), std::string::npos);
  EXPECT_NE(out.str().find("completed"), std::string::npos);
}

}  // namespace
}  // namespace smilab
