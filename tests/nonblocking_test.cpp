// Tests for the nonblocking communication primitives (Isend/Irecv/WaitAll)
// and the overlap semantics they enable.
#include <gtest/gtest.h>

#include "smilab/mpi/collectives.h"
#include "smilab/mpi/job.h"
#include "smilab/sim/system.h"

namespace smilab {
namespace {

SystemConfig cfg_nodes(int nodes) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = nodes;
  cfg.net = NetworkParams::wyeast();
  cfg.seed = 17;
  return cfg;
}

TEST(NonblockingTest, IsendOverlapsComputeWithTransfer) {
  // Blocking: send (rendezvous, waits for the receiver) then 100ms compute.
  // Nonblocking: isend, 100ms compute, waitall — the transfer and the
  // receiver's delay overlap the compute, so the sender finishes sooner.
  const std::int64_t big = 2 << 20;
  auto run = [&](bool nonblocking) {
    System sys{cfg_nodes(2)};
    const GroupId g = sys.create_group(2);
    std::vector<Action> sender;
    if (nonblocking) {
      sender.push_back(Isend{1, big, 1, 0});
      sender.push_back(Compute{milliseconds(100)});
      sender.push_back(WaitAll{{0}});
    } else {
      sender.push_back(Send{1, big, 1});
      sender.push_back(Compute{milliseconds(100)});
    }
    const TaskId sid =
        sys.spawn_member(g, 0, TaskSpec::with_actions("s", 0, std::move(sender)));
    std::vector<Action> receiver;
    receiver.push_back(Compute{milliseconds(60)});  // recv posted late
    receiver.push_back(Recv{0, 1});
    sys.spawn_member(g, 1, TaskSpec::with_actions("r", 1, std::move(receiver)));
    sys.run();
    return sys.task_stats(sid).end_time.seconds();
  };
  const double blocking = run(false);
  const double nonblocking = run(true);
  EXPECT_LT(nonblocking, blocking - 0.030);  // a real overlap win
}

TEST(NonblockingTest, IrecvPrePostMatchesLaterArrival) {
  System sys{cfg_nodes(2)};
  const GroupId g = sys.create_group(2);
  std::vector<Action> receiver;
  receiver.push_back(Irecv{1, 7, 0});
  receiver.push_back(Compute{milliseconds(50)});
  receiver.push_back(WaitAll{{0}});
  const TaskId rid =
      sys.spawn_member(g, 0, TaskSpec::with_actions("r", 0, std::move(receiver)));
  std::vector<Action> sender;
  sender.push_back(Compute{milliseconds(10)});
  sender.push_back(Send{0, 4096, 7});
  sys.spawn_member(g, 1, TaskSpec::with_actions("s", 1, std::move(sender)));
  sys.run();
  EXPECT_EQ(sys.task_stats(rid).messages_received, 1);
  // The transfer landed during the compute: finish ~= 50ms + copy.
  EXPECT_LT(sys.task_stats(rid).end_time.seconds(), 0.055);
}

TEST(NonblockingTest, IrecvLatePostMatchesBufferedMessage) {
  System sys{cfg_nodes(2)};
  const GroupId g = sys.create_group(2);
  std::vector<Action> sender;
  sender.push_back(Send{0, 4096, 7});
  sys.spawn_member(g, 1, TaskSpec::with_actions("s", 1, std::move(sender)));
  std::vector<Action> receiver;
  receiver.push_back(Compute{milliseconds(80)});  // message arrives first
  receiver.push_back(Irecv{1, 7, 3});
  receiver.push_back(WaitAll{{3}});
  const TaskId rid =
      sys.spawn_member(g, 0, TaskSpec::with_actions("r", 0, std::move(receiver)));
  sys.run();
  EXPECT_EQ(sys.task_stats(rid).messages_received, 1);
  EXPECT_LT(sys.task_stats(rid).end_time.seconds(), 0.085);
}

TEST(NonblockingTest, WaitAllGathersManyHandles) {
  System sys{cfg_nodes(4)};
  const GroupId g = sys.create_group(4);
  // Rank 0 exchanges with every peer nonblockingly; peers use blocking ops.
  std::vector<Action> hub;
  for (int peer = 1; peer < 4; ++peer) {
    hub.push_back(Irecv{peer, 100 + peer, peer});
    hub.push_back(Isend{peer, 8192, 200 + peer, 10 + peer});
  }
  hub.push_back(WaitAll{{1, 2, 3, 11, 12, 13}});
  const TaskId hub_id =
      sys.spawn_member(g, 0, TaskSpec::with_actions("hub", 0, std::move(hub)));
  for (int peer = 1; peer < 4; ++peer) {
    std::vector<Action> prog;
    prog.push_back(Recv{0, 200 + peer});
    prog.push_back(Send{0, 8192, 100 + peer});
    sys.spawn_member(g, peer,
                     TaskSpec::with_actions("p" + std::to_string(peer), peer,
                                            std::move(prog)));
  }
  sys.run();
  EXPECT_TRUE(sys.all_finished());
  EXPECT_EQ(sys.task_stats(hub_id).messages_received, 3);
  EXPECT_EQ(sys.task_stats(hub_id).messages_sent, 3);
}

TEST(NonblockingTest, RendezvousIsendCompletesOnlyAtAck) {
  // Big isend to a receiver that posts late: waitall cannot finish before
  // the receiver drains.
  System sys{cfg_nodes(2)};
  const GroupId g = sys.create_group(2);
  std::vector<Action> sender;
  sender.push_back(Isend{1, 4 << 20, 1, 0});
  sender.push_back(WaitAll{{0}});
  const TaskId sid =
      sys.spawn_member(g, 0, TaskSpec::with_actions("s", 0, std::move(sender)));
  std::vector<Action> receiver;
  receiver.push_back(Compute{milliseconds(150)});
  receiver.push_back(Recv{0, 1});
  sys.spawn_member(g, 1, TaskSpec::with_actions("r", 1, std::move(receiver)));
  sys.run();
  EXPECT_GT(sys.task_stats(sid).end_time.seconds(), 0.150);
}

class NonblockingAlltoallSizes : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Sizes, NonblockingAlltoallSizes,
                         ::testing::Values(2, 3, 4, 8));

TEST_P(NonblockingAlltoallSizes, CompletesAndMovesAllPairs) {
  const int p = GetParam();
  System sys{cfg_nodes(p)};
  auto programs = make_rank_programs(p);
  TagAllocator tags;
  alltoall_nonblocking(programs, 16384, tags);
  std::vector<int> placement(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) placement[static_cast<std::size_t>(r)] = r;
  const MpiJobResult result = run_mpi_job(sys, std::move(programs), placement,
                                          WorkloadProfile::dense_fp());
  for (const auto& stats : result.rank_stats) {
    EXPECT_EQ(stats.messages_sent, p - 1);
    EXPECT_EQ(stats.messages_received, p - 1);
  }
}

TEST(NonblockingTest, OverlapReducesSmiSensitivity) {
  // The extension result: a chain of all-to-alls is less SMI-sensitive in
  // the nonblocking all-start-then-wait form than as pairwise blocking
  // rounds, because a frozen peer only delays its own transfers.
  auto run = [](bool nonblocking, bool smi) {
    SystemConfig cfg = cfg_nodes(8);
    cfg.smi = smi ? SmiConfig::long_every_second() : SmiConfig::none();
    cfg.seed = 23;
    System sys{cfg};
    auto programs = make_rank_programs(8);
    TagAllocator tags;
    for (int iter = 0; iter < 15; ++iter) {
      for (auto& rp : programs) rp.compute(milliseconds(60));
      if (nonblocking) {
        alltoall_nonblocking(programs, 1 << 16, tags);
      } else {
        alltoall(programs, 1 << 16, tags);
      }
    }
    std::vector<int> placement(8);
    for (int r = 0; r < 8; ++r) placement[static_cast<std::size_t>(r)] = r;
    return run_mpi_job(sys, std::move(programs), placement,
                       WorkloadProfile::dense_fp())
        .elapsed.seconds();
  };
  const double blocking_pct = run(false, true) / run(false, false) - 1.0;
  const double nonblocking_pct = run(true, true) / run(true, false) - 1.0;
  EXPECT_LT(nonblocking_pct, blocking_pct);
  EXPECT_GT(nonblocking_pct, 0.08);  // still at least the duty cycle
}

}  // namespace
}  // namespace smilab
