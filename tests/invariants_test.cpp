// Property-style invariant tests, parameterized over SMI regimes and
// machine shapes. These pin down the conservation laws the rest of the
// library builds on:
//   (1) single dedicated task: wall == true_cpu + smm_stolen (time is
//       neither created nor lost by the freeze machinery),
//   (2) the OS view always equals true + stolen for on-CPU time,
//   (3) throughput is monotone in SMI gap,
//   (4) runs are bit-deterministic per (config, seed).
#include <gtest/gtest.h>

#include <tuple>

#include "smilab/mpi/collectives.h"
#include "smilab/mpi/job.h"
#include "smilab/sim/system.h"

namespace smilab {
namespace {

using KindGap = std::tuple<SmiKind, int>;  // kind, gap jiffies

class SmiRegimeSweep : public ::testing::TestWithParam<KindGap> {};

INSTANTIATE_TEST_SUITE_P(
    Regimes, SmiRegimeSweep,
    ::testing::Values(KindGap{SmiKind::kNone, 0}, KindGap{SmiKind::kShort, 100},
                      KindGap{SmiKind::kShort, 1000}, KindGap{SmiKind::kLong, 200},
                      KindGap{SmiKind::kLong, 600}, KindGap{SmiKind::kLong, 1000},
                      KindGap{SmiKind::kLong, 1600}));

SmiConfig make_smi(const KindGap& kg) {
  SmiConfig smi;
  smi.kind = std::get<0>(kg);
  if (smi.enabled()) smi.interval_jiffies = std::get<1>(kg);
  return smi;
}

TEST_P(SmiRegimeSweep, SingleTaskTimeConservation) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::poweredge_r410_e5620();
  cfg.machine.hot_set_bytes = 0;  // exclude warm-up work from the ledger
  cfg.smi = make_smi(GetParam());
  cfg.seed = 8;
  System sys{cfg};
  std::vector<Action> prog;
  prog.push_back(Compute{seconds(12)});
  const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, std::move(prog)));
  sys.run();
  const TaskStats& stats = sys.task_stats(id);
  const SimDuration wall = stats.end_time - stats.start_time;
  EXPECT_EQ(wall.ns(), (stats.true_cpu_time + stats.smm_stolen_time).ns());
  EXPECT_EQ(stats.os_view_cpu_time.ns(),
            (stats.true_cpu_time + stats.smm_stolen_time).ns());
  EXPECT_EQ(stats.true_cpu_time, seconds(12));
}

TEST_P(SmiRegimeSweep, StolenTimeMatchesNodeResidencyOverlap) {
  // A task that spans the whole run must absorb every SMM interval of its
  // node in full.
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.machine.hot_set_bytes = 0;
  cfg.smi = make_smi(GetParam());
  cfg.seed = 15;
  System sys{cfg};
  std::vector<Action> prog;
  prog.push_back(Compute{seconds(10)});
  const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, std::move(prog)));
  sys.run();
  const TaskStats& stats = sys.task_stats(id);
  SimDuration overlapped{};
  for (const auto& interval : sys.smm_accounting().intervals()) {
    if (interval.exit <= stats.end_time) overlapped += interval.duration();
  }
  EXPECT_EQ(stats.smm_stolen_time.ns(), overlapped.ns());
  EXPECT_EQ(stats.smm_hits,
            static_cast<std::int64_t>(
                std::count_if(sys.smm_accounting().intervals().begin(),
                              sys.smm_accounting().intervals().end(),
                              [&](const SmmInterval& interval) {
                                return interval.exit <= stats.end_time;
                              })));
}

TEST_P(SmiRegimeSweep, DeterministicAcrossRuns) {
  auto run_once = [&] {
    SystemConfig cfg;
    cfg.machine = MachineSpec::wyeast_e5520();
    cfg.node_count = 4;
    cfg.net = NetworkParams::wyeast();
    cfg.smi = make_smi(GetParam());
    cfg.seed = 77;
    cfg.node_speed_sigma = 0.004;
    System sys{cfg};
    auto programs = make_rank_programs(4);
    TagAllocator tags;
    for (int i = 0; i < 5; ++i) {
      for (auto& rp : programs) rp.compute(milliseconds(200));
      alltoall(programs, 1 << 17, tags);
    }
    return run_mpi_job(sys, std::move(programs), block_placement(4, 1),
                       WorkloadProfile::dense_fp())
        .elapsed.ns();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SmiMonotonicityTest, ThroughputMonotoneInGap) {
  auto wall_at_gap = [](int gap) {
    SystemConfig cfg;
    cfg.machine = MachineSpec::poweredge_r410_e5620();
    cfg.smi = SmiConfig::long_with_gap(gap);
    cfg.smi.fixed_initial_phase = milliseconds(1);
    cfg.seed = 5;
    System sys{cfg};
    std::vector<Action> prog;
    prog.push_back(Compute{seconds(20)});
    const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, std::move(prog)));
    sys.run();
    return (sys.task_stats(id).end_time - sys.task_stats(id).start_time).seconds();
  };
  double prev = 1e30;
  for (const int gap : {50, 100, 200, 400, 800, 1600}) {
    const double wall = wall_at_gap(gap);
    EXPECT_LT(wall, prev * 1.02) << "gap " << gap;  // allow duration jitter
    prev = wall;
  }
}

TEST(SmiMonotonicityTest, LongWorseThanShortWorseThanNone) {
  auto wall_with = [](SmiKind kind) {
    SystemConfig cfg;
    cfg.machine = MachineSpec::wyeast_e5520();
    cfg.smi.kind = kind;
    cfg.seed = 6;
    System sys{cfg};
    std::vector<Action> prog;
    prog.push_back(Compute{seconds(15)});
    const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, std::move(prog)));
    sys.run();
    return (sys.task_stats(id).end_time - sys.task_stats(id).start_time).seconds();
  };
  const double none = wall_with(SmiKind::kNone);
  const double shrt = wall_with(SmiKind::kShort);
  const double lng = wall_with(SmiKind::kLong);
  EXPECT_LT(none, shrt);
  EXPECT_LT(shrt, lng);
}

class NodeCountSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Nodes, NodeCountSweep, ::testing::Values(2, 4, 8, 16));

TEST_P(NodeCountSweep, CollectiveChainNeverFasterThanDutyCycleFloor) {
  // Whatever the topology, a synchronizing job under long SMIs @1/s cannot
  // beat the single-node duty-cycle floor, and must terminate (no deadlock,
  // no starvation) within a sane bound.
  const int nodes = GetParam();
  auto build = [&] {
    auto programs = make_rank_programs(nodes);
    TagAllocator tags;
    for (int i = 0; i < 10; ++i) {
      for (auto& rp : programs) rp.compute(milliseconds(100));
      barrier(programs, tags);
    }
    return programs;
  };
  auto run_with = [&](SmiConfig smi) {
    SystemConfig cfg;
    cfg.machine = MachineSpec::wyeast_e5520();
    cfg.node_count = nodes;
    cfg.net = NetworkParams::wyeast();
    cfg.smi = smi;
    cfg.seed = static_cast<std::uint64_t>(nodes);
    System sys{cfg};
    return run_mpi_job(sys, build(), block_placement(nodes, 1),
                       WorkloadProfile::dense_fp())
        .elapsed.seconds();
  };
  const double base = run_with(SmiConfig::none());
  const double noisy = run_with(SmiConfig::long_every_second());
  EXPECT_GT(noisy / base, 1.08);
  EXPECT_LT(noisy / base, 3.0);
}

}  // namespace
}  // namespace smilab
