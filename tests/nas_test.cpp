// Tests for the NAS workload models: structural properties of the traces,
// class/memory tables, baseline lookups, calibration convergence, and the
// qualitative SMI response the paper reports.
#include <gtest/gtest.h>

#include <variant>

#include "smilab/apps/nas/nas.h"
#include "smilab/apps/nas/runner.h"

namespace smilab {
namespace {

TEST(NasTablesTest, SerialWorkMatchesSingleRankBaselines) {
  EXPECT_DOUBLE_EQ(nas_serial_work_seconds(NasBenchmark::kEP, NasClass::kA), 23.12);
  EXPECT_DOUBLE_EQ(nas_serial_work_seconds(NasBenchmark::kBT, NasClass::kC), 1585.75);
  EXPECT_DOUBLE_EQ(nas_serial_work_seconds(NasBenchmark::kFT, NasClass::kB), 95.48);
}

TEST(NasTablesTest, ClassScalingIsMonotonic) {
  for (const auto bench : {NasBenchmark::kEP, NasBenchmark::kBT, NasBenchmark::kFT}) {
    EXPECT_LT(nas_serial_work_seconds(bench, NasClass::kA),
              nas_serial_work_seconds(bench, NasClass::kB));
    EXPECT_LT(nas_serial_work_seconds(bench, NasClass::kB),
              nas_serial_work_seconds(bench, NasClass::kC));
    EXPECT_LT(nas_grid_points(bench, NasClass::kA),
              nas_grid_points(bench, NasClass::kC));
  }
}

TEST(NasTablesTest, IterationCountsMatchNpb) {
  EXPECT_EQ(nas_iterations(NasBenchmark::kBT, NasClass::kA), 200);
  EXPECT_EQ(nas_iterations(NasBenchmark::kFT, NasClass::kA), 6);
  EXPECT_EQ(nas_iterations(NasBenchmark::kFT, NasClass::kB), 20);
  EXPECT_EQ(nas_iterations(NasBenchmark::kEP, NasClass::kC), 1);
}

TEST(NasTablesTest, ValidRankCounts) {
  EXPECT_TRUE(nas_valid_rank_count(NasBenchmark::kEP, 7));
  EXPECT_TRUE(nas_valid_rank_count(NasBenchmark::kBT, 16));
  EXPECT_TRUE(nas_valid_rank_count(NasBenchmark::kBT, 64));
  EXPECT_FALSE(nas_valid_rank_count(NasBenchmark::kBT, 8));
  EXPECT_TRUE(nas_valid_rank_count(NasBenchmark::kFT, 32));
  EXPECT_FALSE(nas_valid_rank_count(NasBenchmark::kFT, 12));
  EXPECT_FALSE(nas_valid_rank_count(NasBenchmark::kEP, 0));
}

TEST(NasTablesTest, PaperBaselineLookup) {
  NasJobSpec spec{NasBenchmark::kEP, NasClass::kA, 16, 1};
  ASSERT_TRUE(nas_paper_baseline(spec).has_value());
  EXPECT_DOUBLE_EQ(*nas_paper_baseline(spec), 1.46);

  spec = NasJobSpec{NasBenchmark::kBT, NasClass::kB, 4, 4};
  ASSERT_TRUE(nas_paper_baseline(spec).has_value());
  EXPECT_DOUBLE_EQ(*nas_paper_baseline(spec), 85.53);

  spec = NasJobSpec{NasBenchmark::kFT, NasClass::kC, 1, 1};
  EXPECT_FALSE(nas_paper_baseline(spec).has_value());  // "-" cell

  spec = NasJobSpec{NasBenchmark::kEP, NasClass::kA, 3, 1};  // unmeasured row
  EXPECT_FALSE(nas_paper_baseline(spec).has_value());
}

TEST(NasTablesTest, PaperReportsMirrorsTable3Dashes) {
  EXPECT_FALSE(nas_paper_reports({NasBenchmark::kFT, NasClass::kC, 1, 1}));
  EXPECT_FALSE(nas_paper_reports({NasBenchmark::kFT, NasClass::kC, 2, 1}));
  EXPECT_TRUE(nas_paper_reports({NasBenchmark::kFT, NasClass::kC, 4, 1}));
  EXPECT_TRUE(nas_paper_reports({NasBenchmark::kFT, NasClass::kC, 1, 4}));
  EXPECT_TRUE(nas_paper_reports({NasBenchmark::kBT, NasClass::kC, 1, 1}));
}

TEST(NasMemoryTest, FootprintShrinksWithRanks) {
  const double one = nas_bytes_per_rank(NasBenchmark::kFT, NasClass::kC, 1);
  const double four = nas_bytes_per_rank(NasBenchmark::kFT, NasClass::kC, 4);
  EXPECT_NEAR(one / four, 4.0, 1e-9);
}

TEST(NasMemoryTest, Ft_C_FitsWyeastButNotSmallNodes) {
  const NasJobSpec spec{NasBenchmark::kFT, NasClass::kC, 1, 1};
  EXPECT_TRUE(nas_fits_memory(spec, 12.0));   // marginal but fits (7.5 GB)
  EXPECT_FALSE(nas_fits_memory(spec, 6.0));   // would OOM on 6 GB nodes
  const NasJobSpec packed{NasBenchmark::kFT, NasClass::kC, 1, 4};
  EXPECT_FALSE(nas_fits_memory(packed, 6.0));
  EXPECT_TRUE(nas_fits_memory({NasBenchmark::kEP, NasClass::kC, 1, 4}, 12.0));
}

TEST(NasTraceTest, EpTraceIsComputeThenSmallCollectives) {
  const auto programs = build_nas_trace({NasBenchmark::kEP, NasClass::kA, 4, 1}, NasKnob{});
  ASSERT_EQ(programs.size(), 4u);
  for (const auto& rp : programs) {
    ASSERT_FALSE(rp.actions().empty());
    EXPECT_TRUE(std::holds_alternative<Compute>(rp.actions().front()));
    // Everything after the compute is small collective traffic.
    for (std::size_t i = 1; i < rp.actions().size(); ++i) {
      const bool comm = std::holds_alternative<SendRecv>(rp.actions()[i]) ||
                        std::holds_alternative<Send>(rp.actions()[i]) ||
                        std::holds_alternative<Recv>(rp.actions()[i]);
      EXPECT_TRUE(comm);
    }
  }
}

TEST(NasTraceTest, EpComputeSplitsEvenly) {
  const auto p1 = build_nas_trace({NasBenchmark::kEP, NasClass::kA, 1, 1}, NasKnob{});
  const auto p4 = build_nas_trace({NasBenchmark::kEP, NasClass::kA, 4, 1}, NasKnob{});
  const auto& w1 = std::get<Compute>(p1[0].actions()[0]).work;
  const auto& w4 = std::get<Compute>(p4[0].actions()[0]).work;
  EXPECT_NEAR(w1.seconds(), 4.0 * w4.seconds(), 1e-9);
}

TEST(NasTraceTest, BtTraceHasPerIterationExchanges) {
  const auto programs = build_nas_trace({NasBenchmark::kBT, NasClass::kA, 4, 1}, NasKnob{4096, 0});
  ASSERT_EQ(programs.size(), 4u);
  int computes = 0;
  int exchanges = 0;
  for (const auto& a : programs[0].actions()) {
    if (std::holds_alternative<Compute>(a)) ++computes;
    if (const auto* sr = std::get_if<SendRecv>(&a)) {
      ++exchanges;
      EXPECT_EQ(sr->send_bytes, 4096);
    }
  }
  EXPECT_EQ(computes, 200);
  EXPECT_EQ(exchanges % 200, 0);
  EXPECT_GE(exchanges / 200, 2);  // at least 2 distinct torus partners at p=4
}

TEST(NasTraceTest, FtTraceAlltoallPerIteration) {
  const auto programs = build_nas_trace({NasBenchmark::kFT, NasClass::kA, 4, 1}, NasKnob{8192, 0});
  ASSERT_EQ(programs.size(), 4u);
  int exchanges = 0;
  for (const auto& a : programs[0].actions()) {
    if (std::holds_alternative<SendRecv>(a)) ++exchanges;
  }
  // 6 iterations x (p-1) pairwise exchanges + final allreduce rounds.
  EXPECT_GE(exchanges, 6 * 3);
}

TEST(NasTraceTest, SingleRankHasNoCommunication) {
  for (const auto bench : {NasBenchmark::kEP, NasBenchmark::kBT, NasBenchmark::kFT}) {
    const auto programs = build_nas_trace({bench, NasClass::kA, 1, 1}, NasKnob{4096, 0});
    for (const auto& a : programs[0].actions()) {
      EXPECT_TRUE(std::holds_alternative<Compute>(a));
    }
  }
}

TEST(NasCalibrationTest, SingleRankMatchesBaselineExactly) {
  const NasJobSpec spec{NasBenchmark::kFT, NasClass::kA, 1, 1};
  const NasKnob knob = calibrate_nas_knob(spec);
  const double t = simulate_nas_once(spec, knob, SmiConfig::none(), 1, 0.0);
  EXPECT_NEAR(t, 7.64, 0.08);
}

TEST(NasCalibrationTest, MultiNodeBaselineWithinOnePercent) {
  const NasJobSpec spec{NasBenchmark::kFT, NasClass::kA, 4, 1};
  const NasKnob knob = calibrate_nas_knob(spec);
  const double t = simulate_nas_once(spec, knob, SmiConfig::none(), 1, 0.0);
  ASSERT_TRUE(nas_paper_baseline(spec).has_value());
  EXPECT_NEAR(t, *nas_paper_baseline(spec), 0.01 * *nas_paper_baseline(spec) + 0.02);
}

TEST(NasCalibrationTest, EpPadReproducesBaseline) {
  const NasJobSpec spec{NasBenchmark::kEP, NasClass::kA, 16, 1};
  const NasKnob knob = calibrate_nas_knob(spec);
  const double t = simulate_nas_once(spec, knob, SmiConfig::none(), 1, 0.0);
  EXPECT_NEAR(t, 1.46, 0.02);
}

TEST(NasSmiResponseTest, LongSmiSingleRankNearDutyCycle) {
  // Table 2, EP A 1 rank: +10.99%. Expect ~10-12% from the simulation.
  const NasJobSpec spec{NasBenchmark::kEP, NasClass::kA, 1, 1};
  const NasKnob knob = calibrate_nas_knob(spec);
  const double base = simulate_nas_once(spec, knob, SmiConfig::none(), 3, 0.0);
  const double noisy =
      simulate_nas_once(spec, knob, SmiConfig::long_every_second(), 3, 0.0);
  const double pct = (noisy / base - 1.0) * 100.0;
  EXPECT_GT(pct, 9.0);
  EXPECT_LT(pct, 14.0);
}

TEST(NasSmiResponseTest, ShortSmiNegligible) {
  const NasJobSpec spec{NasBenchmark::kEP, NasClass::kA, 1, 1};
  const NasKnob knob = calibrate_nas_knob(spec);
  const double base = simulate_nas_once(spec, knob, SmiConfig::none(), 3, 0.0);
  const double noisy =
      simulate_nas_once(spec, knob, SmiConfig::short_every_second(), 3, 0.0);
  EXPECT_LT((noisy / base - 1.0) * 100.0, 1.5);
}

TEST(NasSmiResponseTest, FtAmplifiesBeyondDutyCycleAcrossNodes) {
  // Table 3, FT A: long-SMI impact grows well past 10.5% with node count.
  const NasJobSpec spec{NasBenchmark::kFT, NasClass::kA, 4, 1};
  const NasKnob knob = calibrate_nas_knob(spec);
  OnlineStats base, noisy;
  for (std::uint64_t s = 1; s <= 4; ++s) {
    base.add(simulate_nas_once(spec, knob, SmiConfig::none(), s, 0.0));
    noisy.add(
        simulate_nas_once(spec, knob, SmiConfig::long_every_second(), s, 0.0));
  }
  const double pct = (noisy.mean() / base.mean() - 1.0) * 100.0;
  EXPECT_GT(pct, 14.0);  // amplified beyond the single-node duty cycle
}

TEST(NasRunCellTest, CollectsTrialsAndStats) {
  NasRunOptions options;
  options.trials = 3;
  const NasCellResult cell =
      run_nas_cell({NasBenchmark::kEP, NasClass::kA, 2, 1}, options);
  EXPECT_EQ(cell.smm0.count(), 3u);
  EXPECT_EQ(cell.smm1.count(), 3u);
  EXPECT_EQ(cell.smm2.count(), 3u);
  ASSERT_TRUE(cell.paper_baseline_s.has_value());
  EXPECT_NEAR(cell.smm0.mean(), *cell.paper_baseline_s,
              0.02 * *cell.paper_baseline_s);
  EXPECT_GT(cell.smm2.mean(), cell.smm0.mean() * 1.05);
}

}  // namespace
}  // namespace smilab
