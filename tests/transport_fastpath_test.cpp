// Fast-path bit-equality suite: the transport's opportunistic machinery —
// NIC pipeline booking, lazy rendezvous-ack maturation, and the piggyback
// ack delivery route — must be a pure performance change. Every test here
// runs the same scenario twice, once with System::set_transport_fast_paths
// on (the default) and once off (the classic event-per-step chain), and
// asserts the full observable trace hashes are EQUAL. There are no pinned
// constants: the classic path is itself covered by the pinned goldens in
// transport_test.cpp, so equality against it extends those pins to the
// fast paths.
//
// The scenarios target exactly the conditions under which the fast paths
// must hand back to the classic machinery:
//  * long SMIs landing mid-burst (NIC pause converts booked pipelines);
//  * fault-plan drops/duplicates and a crash (link faults disable the
//    piggyback ack route; kill-time ack wakes must keep watchdog parity);
//  * same-node rendezvous (the intra-node ack timing path);
//  * permuted send interleavings (booking must serialize any submit order
//    exactly like per-message service, mirroring determinism_test.cpp's
//    permutation style).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "smilab/fault/fault_injector.h"
#include "smilab/fault/fault_plan.h"
#include "smilab/mpi/collectives.h"
#include "smilab/mpi/job.h"
#include "smilab/sim/system.h"

namespace smilab {
namespace {

class TraceHash {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ull;
    }
  }
  void mix_signed(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

void mix_stats(TraceHash& h, const TaskStats& s) {
  h.mix_signed(s.end_time.ns());
  h.mix_signed(s.os_view_cpu_time.ns());
  h.mix_signed(s.true_cpu_time.ns());
  h.mix_signed(s.smm_stolen_time.ns());
  h.mix_signed(s.refill_overhead.ns());
  h.mix_signed(s.smm_hits);
  h.mix_signed(s.messages_sent);
  h.mix_signed(s.messages_received);
  h.mix_signed(s.bytes_sent);
  h.mix(s.finished ? 1 : 0);
  h.mix(s.failed ? 1 : 0);
}

void mix_system(TraceHash& h, const System& sys) {
  for (int t = 0; t < sys.task_count(); ++t) {
    mix_stats(h, sys.task_stats(TaskId{t}));
  }
  h.mix_signed(sys.inter_node_bytes());
  h.mix_signed(sys.messages_dropped());
  h.mix_signed(sys.messages_duplicated());
  h.mix_signed(sys.retransmissions());
  h.mix_signed(sys.transport_failures());
}

SystemConfig wyeast_cfg(int nodes, std::uint64_t seed) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = nodes;
  cfg.net = NetworkParams::wyeast();
  cfg.seed = seed;
  return cfg;
}

// Rendezvous ring with deep nonblocking bursts: every rank keeps `burst`
// isends and irecvs outstanding at once, so rendezvous acks pile up and
// the waitall progress counters, lazy maturation and (with SMIs) pipeline
// conversions all engage.
std::uint64_t ack_ring_hash(bool fast_paths, bool long_smi, int ranks_per_node,
                            std::uint64_t seed) {
  const int ranks = 6;
  SystemConfig cfg =
      wyeast_cfg((ranks + ranks_per_node - 1) / ranks_per_node, seed);
  cfg.smi = long_smi ? SmiConfig::long_every_second()
                     : SmiConfig::short_every_second();
  System sys{cfg};
  sys.set_transport_fast_paths(fast_paths);
  auto programs = make_rank_programs(ranks);
  constexpr int kBurst = 24;
  for (int round = 0; round < 4; ++round) {
    for (auto& rp : programs) {
      rp.compute(milliseconds(35));  // lets SMIs land between bursts
      const int next = (rp.rank() + 1) % ranks;
      std::vector<int> handles;
      for (int i = 0; i < kBurst; ++i) {
        rp.isend(next, 128 * 1024, 10 + i, /*handle=*/i);
        rp.irecv_any(10 + i, /*handle=*/kBurst + i);
        handles.push_back(i);
        handles.push_back(kBurst + i);
      }
      rp.waitall(std::move(handles));
    }
  }
  auto result = run_mpi_job(sys, std::move(programs),
                            block_placement(ranks, ranks_per_node),
                            WorkloadProfile::dense_fp());
  sys.validate();
  TraceHash h;
  h.mix_signed(result.elapsed.ns());
  mix_system(h, sys);
  return h.value();
}

TEST(TransportFastPathTest, RendezvousRingMatchesClassicUnderLongSmi) {
  for (const std::uint64_t seed : {1ull, 9ull}) {
    EXPECT_EQ(ack_ring_hash(true, /*long_smi=*/true, /*rpn=*/1, seed),
              ack_ring_hash(false, /*long_smi=*/true, /*rpn=*/1, seed))
        << "seed " << seed;
  }
}

TEST(TransportFastPathTest, RendezvousRingMatchesClassicUnderShortSmi) {
  EXPECT_EQ(ack_ring_hash(true, /*long_smi=*/false, /*rpn=*/1, 4),
            ack_ring_hash(false, /*long_smi=*/false, /*rpn=*/1, 4));
}

// Two ranks per node: half the ring's traffic is same-node, exercising the
// intra-node rendezvous ack timing (lazy delivery at now + intra_transfer).
TEST(TransportFastPathTest, SameNodeRendezvousMatchesClassic) {
  for (const std::uint64_t seed : {2ull, 17ull}) {
    EXPECT_EQ(ack_ring_hash(true, /*long_smi=*/true, /*rpn=*/2, seed),
              ack_ring_hash(false, /*long_smi=*/true, /*rpn=*/2, seed))
        << "seed " << seed;
  }
}

// Probabilistic drops/duplicates plus a mid-run crash: link faults must
// make the piggyback ack route disable itself (retransmission timing is
// observable), and a killed sender's queued lazy acks must keep the same
// watchdog progress sequence the classic chain produced.
std::uint64_t faulted_hash(bool fast_paths, std::uint64_t seed) {
  SystemConfig cfg = wyeast_cfg(6, seed);
  cfg.smi = SmiConfig::long_every_second();
  System sys{cfg};
  sys.set_transport_fast_paths(fast_paths);
  FaultPlan plan;
  plan.drop(0.05).duplicate(0.05).crash(5, SimTime{2'500'000'000});
  FaultInjector injector{sys, plan};
  auto programs = make_rank_programs(6);
  TagAllocator tags;
  for (int iter = 0; iter < 6; ++iter) {
    for (auto& rp : programs) rp.compute(milliseconds(30));
    alltoall(programs, 128 * 1024, tags);
    alltoall_nonblocking(programs, 80 * 1024, tags);
    allreduce(programs, 2048, tags);
  }
  auto out = try_run_mpi_job(sys, std::move(programs), block_placement(6, 1),
                             WorkloadProfile::dense_fp());
  TraceHash h;
  h.mix(static_cast<std::uint64_t>(out.run.status));
  mix_system(h, sys);
  return h.value();
}

TEST(TransportFastPathTest, FaultPlanDropsMatchClassic) {
  for (const std::uint64_t seed : {7ull, 23ull}) {
    EXPECT_EQ(faulted_hash(true, seed), faulted_hash(false, seed))
        << "seed " << seed;
  }
}

// Eager burst at one egress NIC under every cross-sender interleaving of
// the submit order: booked pipeline service must equal per-message classic
// service for any order in which submits hit the server. Three senders on
// one node interleave their injections through the shared egress server;
// the permutation rotates which sender's burst is emitted first.
std::uint64_t egress_interleave_hash(bool fast_paths, const int (&order)[3]) {
  SystemConfig cfg = wyeast_cfg(2, 5);
  cfg.smi = SmiConfig::long_every_second();  // pauses convert mid-burst
  System sys{cfg};
  sys.set_transport_fast_paths(fast_paths);
  auto programs = make_rank_programs(4);  // ranks 0..2 on node 0, 3 on node 1
  constexpr int kBurst = 30;
  for (int round = 0; round < 3; ++round) {
    for (const int s : order) {
      auto& rp = programs[static_cast<std::size_t>(s)];
      std::vector<int> handles;
      for (int i = 0; i < kBurst; ++i) {
        rp.isend(3, 4096, /*tag=*/100 * s + i, /*handle=*/i);
        handles.push_back(i);
      }
      rp.waitall(std::move(handles));
      rp.compute(milliseconds(10));
    }
    auto& sink = programs[3];
    for (const int s : order) {
      for (int i = 0; i < kBurst; ++i) {
        sink.irecv(s, 100 * s + i, /*handle=*/100 * s + i);
      }
    }
    std::vector<int> sink_handles;
    for (int s = 0; s < 3; ++s) {
      for (int i = 0; i < kBurst; ++i) sink_handles.push_back(100 * s + i);
    }
    sink.waitall(std::move(sink_handles));
  }
  auto result = run_mpi_job(sys, std::move(programs),
                            block_placement(4, /*ranks_per_node=*/3),
                            WorkloadProfile::dense_fp());
  sys.validate();
  TraceHash h;
  h.mix_signed(result.elapsed.ns());
  mix_system(h, sys);
  return h.value();
}

TEST(TransportFastPathTest, EgressBurstMatchesClassicAcrossInterleavings) {
  const int perms[][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                          {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (const auto& p : perms) {
    EXPECT_EQ(egress_interleave_hash(true, p), egress_interleave_hash(false, p))
        << "order " << p[0] << p[1] << p[2];
  }
}

}  // namespace
}  // namespace smilab
