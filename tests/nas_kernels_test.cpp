// Tests for the real NAS compute kernels: the NPB LCG (jump-ahead
// correctness), the EP Gaussian-deviate kernel (decomposition invariance +
// statistics), the FFT (vs naive DFT, Parseval, round trips), and the
// block-tridiagonal solver (residual vs dense expectations).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "smilab/apps/nas/kernels/block_tridiag.h"
#include "smilab/apps/nas/kernels/ep_kernel.h"
#include "smilab/apps/nas/kernels/fft.h"
#include "smilab/apps/nas/kernels/npb_random.h"

namespace smilab {
namespace {

TEST(NpbRandomTest, ValuesInUnitInterval) {
  NpbRandom rng;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.next();
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(NpbRandomTest, JumpMatchesSequentialDraws) {
  for (const std::uint64_t k : {1ull, 2ull, 17ull, 1000ull, 123456ull}) {
    NpbRandom sequential;
    for (std::uint64_t i = 0; i < k; ++i) sequential.next();
    NpbRandom jumped;
    jumped.jump(k);
    EXPECT_EQ(sequential.state(), jumped.state()) << "k=" << k;
  }
}

TEST(NpbRandomTest, JumpZeroIsIdentity) {
  NpbRandom a;
  NpbRandom b;
  b.jump(0);
  EXPECT_EQ(a.state(), b.state());
}

TEST(NpbRandomTest, MeanIsNearHalf) {
  NpbRandom rng;
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.next();
  EXPECT_NEAR(sum / n, 0.5, 0.003);
}

TEST(EpKernelTest, DecompositionInvariance) {
  // The defining EP property: any rank partition of the pair stream tallies
  // exactly the same deviates (integer counts are bit-identical; the float
  // sums differ only by summation order, as in real NPB's allreduce).
  const std::int64_t pairs = 1 << 18;
  const EpResult whole = run_ep_kernel(pairs);
  for (const int ranks : {2, 3, 4, 16}) {
    const EpResult split = run_ep_partitioned(pairs, ranks);
    EXPECT_NEAR(split.sx, whole.sx, 1e-8) << ranks << " ranks";
    EXPECT_NEAR(split.sy, whole.sy, 1e-8);
    EXPECT_EQ(split.gaussian_pairs, whole.gaussian_pairs);
    EXPECT_EQ(split.q, whole.q);
  }
}

TEST(EpKernelTest, AcceptanceRateIsPiOverFour) {
  const std::int64_t pairs = 1 << 20;
  const EpResult result = run_ep_kernel(pairs);
  const double acceptance =
      static_cast<double>(result.gaussian_pairs) / static_cast<double>(pairs);
  EXPECT_NEAR(acceptance, std::numbers::pi / 4.0, 0.002);
}

TEST(EpKernelTest, GaussianAnnulusCountsDecay) {
  // |max(|X|,|Y|)| of a standard Gaussian pair: nearly all mass in the
  // first few annuli, strictly decreasing after the first.
  const EpResult result = run_ep_kernel(1 << 20);
  std::int64_t tallied = 0;
  for (const auto count : result.q) tallied += count;
  EXPECT_EQ(tallied, result.gaussian_pairs);
  EXPECT_GT(result.q[0], result.q[2]);
  for (std::size_t i = 1; i + 1 < result.q.size(); ++i) {
    EXPECT_GE(result.q[i], result.q[i + 1]) << "annulus " << i;
  }
  EXPECT_EQ(result.q[9], 0);  // ~6 sigma: unreachable at this sample size
}

TEST(EpKernelTest, AnnulusCountsMatchAnalyticProbabilities) {
  // For a standard Gaussian pair, P(annulus l) = F(l+1)^2 - F(l)^2 with
  // F(x) = erf(x / sqrt(2)) — the Marsaglia transform must reproduce the
  // analytic distribution within sampling error.
  const std::int64_t pairs = 1 << 21;
  const EpResult result = run_ep_kernel(pairs);
  const double n = static_cast<double>(result.gaussian_pairs);
  auto cdf_abs = [](double x) { return std::erf(x / std::sqrt(2.0)); };
  for (int l = 0; l < 4; ++l) {
    const double p = cdf_abs(l + 1.0) * cdf_abs(l + 1.0) -
                     cdf_abs(static_cast<double>(l)) * cdf_abs(static_cast<double>(l));
    const double observed =
        static_cast<double>(result.q[static_cast<std::size_t>(l)]) / n;
    // 6-sigma band on a binomial proportion.
    const double sigma = std::sqrt(p * (1 - p) / n);
    EXPECT_NEAR(observed, p, 6.0 * sigma + 1e-6) << "annulus " << l;
  }
}

TEST(FftTest, LinearityHolds) {
  NpbRandom rng{13};
  std::vector<Complex> a(64), b(64);
  for (auto& v : a) v = Complex{rng.next() - 0.5, rng.next() - 0.5};
  for (auto& v : b) v = Complex{rng.next() - 0.5, rng.next() - 0.5};
  const Complex alpha{2.0, -1.5};
  std::vector<Complex> combo(64);
  for (std::size_t i = 0; i < 64; ++i) combo[i] = alpha * a[i] + b[i];
  std::vector<Complex> fa = a, fb = b, fc = combo;
  fft(fa);
  fft(fb);
  fft(fc);
  for (std::size_t i = 0; i < 64; ++i) {
    const Complex expected = alpha * fa[i] + fb[i];
    EXPECT_NEAR(std::abs(fc[i] - expected), 0.0, 1e-9);
  }
}

TEST(EpKernelTest, SumsAreNearZeroMean) {
  const EpResult result = run_ep_kernel(1 << 20);
  const double n = static_cast<double>(result.gaussian_pairs);
  // Mean of N(0,1) samples: |mean| < 5/sqrt(n) with huge probability.
  EXPECT_LT(std::fabs(result.sx / n), 5.0 / std::sqrt(n));
  EXPECT_LT(std::fabs(result.sy / n), 5.0 / std::sqrt(n));
}

TEST(FftTest, MatchesNaiveDftForward) {
  NpbRandom rng{7};
  std::vector<Complex> data(32);
  for (auto& value : data) value = Complex{rng.next() - 0.5, rng.next() - 0.5};
  std::vector<Complex> fast = data;
  fft(fast);
  const std::vector<Complex> slow = naive_dft(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(fast[i].real(), slow[i].real(), 1e-9) << i;
    EXPECT_NEAR(fast[i].imag(), slow[i].imag(), 1e-9) << i;
  }
}

TEST(FftTest, InverseRoundTrips) {
  NpbRandom rng{9};
  std::vector<Complex> data(256);
  for (auto& value : data) value = Complex{rng.next(), rng.next()};
  std::vector<Complex> transformed = data;
  fft(transformed);
  fft(transformed, /*inverse=*/true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(transformed[i].real(), data[i].real(), 1e-10);
    EXPECT_NEAR(transformed[i].imag(), data[i].imag(), 1e-10);
  }
}

TEST(FftTest, ParsevalHolds) {
  NpbRandom rng{11};
  std::vector<Complex> data(128);
  for (auto& value : data) value = Complex{rng.next() - 0.5, rng.next() - 0.5};
  double time_energy = 0.0;
  for (const auto& value : data) time_energy += std::norm(value);
  std::vector<Complex> freq = data;
  fft(freq);
  double freq_energy = 0.0;
  for (const auto& value : freq) freq_energy += std::norm(value);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(data.size()), 1e-6);
}

TEST(FftTest, DeltaTransformsToConstant) {
  std::vector<Complex> data(64, Complex{0.0, 0.0});
  data[0] = Complex{1.0, 0.0};
  fft(data);
  for (const auto& value : data) {
    EXPECT_NEAR(value.real(), 1.0, 1e-12);
    EXPECT_NEAR(value.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  const std::size_t tone = 5;
  std::vector<Complex> data(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(tone) *
                         static_cast<double>(j) / static_cast<double>(n);
    data[j] = Complex{std::cos(angle), std::sin(angle)};
  }
  fft(data);
  for (std::size_t k = 0; k < n; ++k) {
    const double magnitude = std::abs(data[k]);
    if (k == tone) {
      EXPECT_NEAR(magnitude, static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(magnitude, 0.0, 1e-9);
    }
  }
}

TEST(Fft3dTest, RoundTripsAndChecksumStable) {
  Grid3 grid{16, 8, 8};
  grid.fill_random(NpbRandom::kDefaultSeed);
  const Complex before = ft_checksum(grid);
  Grid3 copy = grid;
  fft3d(copy);
  const Complex transformed = ft_checksum(copy);
  EXPECT_GT(std::abs(transformed - before), 1e-9);  // it did something
  fft3d(copy, /*inverse=*/true);
  for (int z = 0; z < grid.nz(); ++z) {
    for (int y = 0; y < grid.ny(); ++y) {
      for (int x = 0; x < grid.nx(); ++x) {
        EXPECT_NEAR(copy.at(x, y, z).real(), grid.at(x, y, z).real(), 1e-9);
        EXPECT_NEAR(copy.at(x, y, z).imag(), grid.at(x, y, z).imag(), 1e-9);
      }
    }
  }
}

TEST(Fft3dTest, SeparabilityMatchesPerAxisDft) {
  // A 3-D delta transforms to the all-ones grid.
  Grid3 grid{8, 4, 4};
  grid.at(0, 0, 0) = Complex{1.0, 0.0};
  fft3d(grid);
  for (int z = 0; z < grid.nz(); ++z) {
    for (int y = 0; y < grid.ny(); ++y) {
      for (int x = 0; x < grid.nx(); ++x) {
        EXPECT_NEAR(grid.at(x, y, z).real(), 1.0, 1e-10);
        EXPECT_NEAR(grid.at(x, y, z).imag(), 0.0, 1e-10);
      }
    }
  }
}

TEST(FtEvolveTest, DecaysHighFrequenciesFaster) {
  Grid3 grid{16, 16, 16};
  grid.at(1, 0, 0) = Complex{1.0, 0.0};  // low wavenumber
  grid.at(7, 0, 0) = Complex{1.0, 0.0};  // high wavenumber
  ft_evolve(grid, 1.0, 1e-3);
  EXPECT_GT(std::abs(grid.at(1, 0, 0)), std::abs(grid.at(7, 0, 0)));
  EXPECT_LT(std::abs(grid.at(1, 0, 0)), 1.0);  // everything decays
}

TEST(FtEvolveTest, DcComponentIsInvariant) {
  Grid3 grid{8, 8, 8};
  grid.at(0, 0, 0) = Complex{2.5, -1.0};
  ft_evolve(grid, 10.0, 1e-2);
  EXPECT_NEAR(grid.at(0, 0, 0).real(), 2.5, 1e-12);
  EXPECT_NEAR(grid.at(0, 0, 0).imag(), -1.0, 1e-12);
}

TEST(FtEvolveTest, TwoStepsEqualOneDoubleStep) {
  Grid3 a{8, 8, 4};
  a.fill_random(5);
  Grid3 b = a;
  ft_evolve(a, 1.0, 1e-4);
  ft_evolve(a, 1.0, 1e-4);
  ft_evolve(b, 2.0, 1e-4);
  for (int z = 0; z < a.nz(); ++z) {
    for (int y = 0; y < a.ny(); ++y) {
      for (int x = 0; x < a.nx(); ++x) {
        EXPECT_NEAR(std::abs(a.at(x, y, z) - b.at(x, y, z)), 0.0, 1e-12);
      }
    }
  }
}

TEST(FtReferenceTest, ChecksumsEvolveAndAreDeterministic) {
  const FtReferenceResult a = ft_reference_run(16, 16, 8, 4);
  const FtReferenceResult b = ft_reference_run(16, 16, 8, 4);
  ASSERT_EQ(a.checksums.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a.checksums[i], b.checksums[i]);
  }
  // The field diffuses: successive checksums differ, and the solution's
  // energy decreases monotonically toward the mean.
  EXPECT_NE(a.checksums[0], a.checksums[3]);
}

TEST(Block5Test, InverseTimesSelfIsIdentity) {
  const BlockTriSystem system = BlockTriSystem::random(1, 3);
  const Block5 inv = system.diag[0].inverse();
  const Block5 product = system.diag[0] * inv;
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(product.m[i][j], i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Block5Test, IdentityApplyIsNoop) {
  const Block5 eye = Block5::identity();
  const std::array<double, 5> v{1, -2, 3, -4, 5};
  EXPECT_EQ(eye.apply(v), v);
}

TEST(BlockTridiagTest, SolvesSingleCell) {
  BlockTriSystem system = BlockTriSystem::random(1, 17);
  const auto u = solve_block_tridiag(system);
  EXPECT_LT(block_tridiag_residual(system, u), 1e-10);
}

class BlockTridiagSizes : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Sizes, BlockTridiagSizes,
                         ::testing::Values(2, 3, 8, 64, 162));

TEST_P(BlockTridiagSizes, ResidualIsTiny) {
  // 162 is BT class C's grid edge: one full line solve at production size.
  BlockTriSystem system =
      BlockTriSystem::random(static_cast<std::size_t>(GetParam()), 23);
  const auto u = solve_block_tridiag(system);
  EXPECT_LT(block_tridiag_residual(system, u), 1e-9);
}

TEST(BtReferenceTest, AdiSweepsConvergeGeometrically) {
  const BtReferenceResult run = bt_reference_run(8, 6, 2016);
  ASSERT_EQ(run.residuals.size(), 6u);
  for (std::size_t i = 1; i < run.residuals.size(); ++i) {
    EXPECT_LT(run.residuals[i], run.residuals[i - 1] * 0.7)
        << "iteration " << i;
  }
  EXPECT_LT(run.residuals.back(), run.residuals.front() * 1e-3);
}

TEST(BtReferenceTest, DeterministicPerSeed) {
  const BtReferenceResult a = bt_reference_run(6, 3, 7);
  const BtReferenceResult b = bt_reference_run(6, 3, 7);
  EXPECT_EQ(a.residuals, b.residuals);
  const BtReferenceResult c = bt_reference_run(6, 3, 8);
  EXPECT_NE(a.residuals[0], c.residuals[0]);
}

TEST(BlockTridiagTest, IdentitySystemReturnsRhs) {
  BlockTriSystem system;
  system.sub.resize(4);
  system.super.resize(4);
  system.diag.assign(4, Block5::identity());
  system.rhs = {{{1, 2, 3, 4, 5}},
                {{-1, 0, 1, 0, -1}},
                {{0.5, 0.25, 0, -0.25, -0.5}},
                {{9, 8, 7, 6, 5}}};
  const auto u = solve_block_tridiag(system);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t d = 0; d < 5; ++d) {
      EXPECT_NEAR(u[i][d], system.rhs[i][d], 1e-12);
    }
  }
}

}  // namespace
}  // namespace smilab
