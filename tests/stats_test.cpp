// Unit tests for the statistics utilities: OnlineStats (Welford + merge),
// Histogram (bucketing, percentiles), Table and Series rendering.
#include <gtest/gtest.h>

#include <cmath>

#include "smilab/stats/histogram.h"
#include "smilab/stats/online_stats.h"
#include "smilab/stats/table.h"
#include "smilab/time/rng.h"

namespace smilab {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.sem(), 0.0);
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(OnlineStatsTest, KnownMoments) {
  OnlineStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(OnlineStatsTest, NumericallyStableForLargeOffsets) {
  OnlineStats stats;
  const double offset = 1e12;
  for (int i = 0; i < 1000; ++i) stats.add(offset + (i % 2 ? 1.0 : -1.0));
  EXPECT_NEAR(stats.mean(), offset, 1e-3);
  EXPECT_NEAR(stats.variance(), 1.001, 0.01);
}

TEST(OnlineStatsTest, MergeMatchesCombinedStream) {
  Rng rng{5};
  OnlineStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    all.add(v);
    (i < 400 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStatsTest, MergeWithEmptySides) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  OnlineStats a_copy = a;
  a.merge(b);  // empty other
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty this
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(OnlineStatsTest, Ci95ShrinksWithSamples) {
  Rng rng{9};
  OnlineStats small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.normal(0, 1));
  for (int i = 0; i < 1000; ++i) large.add(rng.normal(0, 1));
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(HistogramTest, BucketsAndBounds) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);
  h.add(9.99);
  h.add(-1.0);
  h.add(10.0);  // hi is exclusive -> overflow
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 4.0);
}

TEST(HistogramTest, PercentileInterpolates) {
  Histogram h{0.0, 100.0, 100};
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.percentile(50), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(90), 90.0, 1.0);
  EXPECT_NEAR(h.percentile(99), 99.0, 1.5);
}

TEST(HistogramTest, PercentileOfEmpty) {
  Histogram h{0.0, 1.0, 4};
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(HistogramTest, RenderSkipsEmptyEdges) {
  Histogram h{0.0, 100.0, 100};
  h.add(50.0);
  const std::string out = h.render();
  EXPECT_NE(out.find("50"), std::string::npos);
  // Only one bucket line.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
}

TEST(TableTest, CellFormatsAndAccessors) {
  Table t{{"a", "b", "c"}};
  t.row().cell("x").cell(3.14159, 2).cell(static_cast<long long>(42));
  t.row().dash().cell(1.0, 0).cell("z");
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.column_count(), 3u);
  EXPECT_EQ(t.at(0, 0), "x");
  EXPECT_EQ(t.at(0, 1), "3.14");
  EXPECT_EQ(t.at(0, 2), "42");
  EXPECT_EQ(t.at(1, 0), "-");
}

TEST(TableTest, AlignedTextHasHeaderAndRule) {
  Table t{{"name", "value"}};
  t.row().cell("alpha").cell(1.5, 1);
  const std::string text = t.to_aligned_text();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("1.5"), std::string::npos);
}

TEST(TableTest, MarkdownAndCsvWellFormed) {
  Table t{{"x", "y"}};
  t.row().cell("a").cell("b");
  const std::string md = t.to_markdown();
  EXPECT_EQ(md.find("| x | y |"), 0u);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv, "x,y\na,b\n");
}

TEST(SeriesTest, StoresPointsPerSeries) {
  Series s{"x", {"one", "two"}};
  s.add_point(1.0, {10.0, 20.0});
  s.add_point(2.0, {11.0, 21.0});
  EXPECT_EQ(s.point_count(), 2u);
  EXPECT_EQ(s.series_count(), 2u);
  EXPECT_DOUBLE_EQ(s.x(1), 2.0);
  EXPECT_DOUBLE_EQ(s.y(0, 1), 11.0);
  EXPECT_DOUBLE_EQ(s.y(1, 0), 20.0);
  EXPECT_EQ(s.series_name(1), "two");
}

TEST(SeriesTest, CsvRoundTripValues) {
  Series s{"gap", {"a"}};
  s.add_point(50.0, {1.25});
  const std::string csv = s.to_csv();
  EXPECT_EQ(csv, "gap,a\n50,1.25\n");
}

}  // namespace
}  // namespace smilab
