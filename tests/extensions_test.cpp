// Tests for the extension modules: the RIM security-check model, the
// energy estimator, and the Chrome-trace exporter.
#include <gtest/gtest.h>

#include "smilab/cpu/energy.h"
#include "smilab/sim/system.h"
#include "smilab/smm/rim.h"
#include "smilab/trace/chrome_trace.h"

namespace smilab {
namespace {

TEST(RimTest, DurationScalesWithScanSize) {
  RimConfig small;
  small.scanned_bytes = 1e6;
  RimConfig big;
  big.scanned_bytes = 64e6;
  EXPECT_LT(small.smm_duration(), big.smm_duration());
  // 64 MB at 1.5 GB/s ~= 42.7 ms plus overhead.
  EXPECT_NEAR(big.smm_duration().seconds(), 64e6 / 1.5e9 + 200e-6, 1e-4);
}

TEST(RimTest, DutyCycleAndDetectionLatencyTradeOff) {
  RimConfig rim;
  rim.scanned_bytes = 16e6;
  rim.check_interval_jiffies = 1000;
  const double duty_fast = rim.duty_cycle();
  rim.check_interval_jiffies = 4000;
  const double duty_slow = rim.duty_cycle();
  EXPECT_GT(duty_fast, duty_slow);
  // Covering 256 MB of state takes 16 checks: latency grows with interval.
  rim.check_interval_jiffies = 1000;
  const SimDuration fast = rim.detection_latency(256e6);
  rim.check_interval_jiffies = 4000;
  const SimDuration slow = rim.detection_latency(256e6);
  EXPECT_LT(fast, slow);
  EXPECT_NEAR(fast.seconds(), 16.0 * (1.0 + rim.smm_duration().seconds()), 0.2);
}

TEST(RimTest, ToSmiConfigPreservesResidency) {
  RimConfig rim;
  rim.scanned_bytes = 32e6;
  const SmiConfig smi = rim.to_smi_config();
  EXPECT_TRUE(smi.enabled());
  EXPECT_EQ(smi.interval_jiffies, rim.check_interval_jiffies);
  EXPECT_LE(smi.long_min, rim.smm_duration());
  EXPECT_GE(smi.long_max, rim.smm_duration());
}

TEST(RimTest, DrivesTheInjectionEngine) {
  RimConfig rim;
  rim.scanned_bytes = 48e6;  // ~32ms checks
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.smi = rim.to_smi_config();
  cfg.seed = 3;
  System sys{cfg};
  std::vector<Action> prog;
  prog.push_back(Compute{seconds(10)});
  const TaskId id = sys.spawn(TaskSpec::with_actions("app", 0, std::move(prog)));
  sys.run();
  const double wall =
      (sys.task_stats(id).end_time - sys.task_stats(id).start_time).seconds();
  // ~32ms per second: ~3.2% slowdown plus refill.
  EXPECT_NEAR(wall / 10.0 - 1.0, rim.duty_cycle() / (1 - rim.duty_cycle()), 0.015);
  for (const auto& interval : sys.smm_accounting().intervals()) {
    EXPECT_NEAR(interval.duration().seconds(), rim.smm_duration().seconds(),
                rim.smm_duration().seconds() * 0.06);
  }
}

TEST(EnergyTest, SmisIncreaseRunEnergy) {
  auto energy_for = [](SmiConfig smi) {
    SystemConfig cfg;
    cfg.machine = MachineSpec::wyeast_e5520();
    cfg.smi = smi;
    cfg.seed = 9;
    System sys{cfg};
    std::vector<Action> prog;
    prog.push_back(Compute{seconds(20)});
    sys.spawn(TaskSpec::with_actions("app", 0, std::move(prog)));
    sys.run();
    return estimate_energy(sys, PowerModel{});
  };
  const EnergyReport clean = energy_for(SmiConfig::none());
  const EnergyReport noisy = energy_for(SmiConfig::long_every_second());
  // Same useful work (plus the post-SMM warm-up, which is real CPU work),
  // longer wall, plus SMM power: more joules (IISWC'13).
  EXPECT_GT(noisy.joules, clean.joules * 1.05);
  EXPECT_GE(noisy.busy_core_seconds, clean.busy_core_seconds);
  EXPECT_LT(noisy.busy_core_seconds, clean.busy_core_seconds * 1.15);
  EXPECT_GT(noisy.smm_node_seconds, 1.5);
  EXPECT_EQ(clean.smm_node_seconds, 0.0);
}

TEST(EnergyTest, IdleDominatedBaseline) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.seed = 2;
  System sys{cfg};
  std::vector<Action> prog;
  prog.push_back(Compute{seconds(10)});
  sys.spawn(TaskSpec::with_actions("app", 0, std::move(prog)));
  sys.run();
  const EnergyReport report = estimate_energy(sys, PowerModel{});
  EXPECT_NEAR(report.wall_seconds, 10.0, 1e-6);
  EXPECT_NEAR(report.busy_core_seconds, 10.0, 1e-6);
  EXPECT_NEAR(report.joules, 10.0 * 120.0 + 10.0 * 18.0, 1.0);
  EXPECT_NEAR(report.average_watts, 138.0, 0.5);
}

TEST(ChromeTraceTest, EmitsTasksAndSmmSlices) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.smi = SmiConfig::long_every_second();
  cfg.seed = 4;
  System sys{cfg};
  std::vector<Action> prog;
  prog.push_back(Compute{seconds(3)});
  sys.spawn(TaskSpec::with_actions("solver rank \"0\"", 0, std::move(prog)));
  sys.run();
  const std::string json = to_chrome_trace(sys);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("solver rank _0_"), std::string::npos);  // sanitized
  EXPECT_NE(json.find("\"SMM\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  // Counts: 1 task + >=2 SMM slices.
  std::size_t events = 0;
  for (std::size_t pos = json.find("\"name\""); pos != std::string::npos;
       pos = json.find("\"name\"", pos + 1)) {
    ++events;
  }
  EXPECT_GE(events, 3u);
}

TEST(ChromeTraceTest, EmptySystemIsValidJson) {
  SystemConfig cfg;
  System sys{cfg};
  const std::string json = to_chrome_trace(sys);
  EXPECT_EQ(json.find("{\"traceEvents\": ["), 0u);
  EXPECT_NE(json.find("]}"), std::string::npos);
}

}  // namespace
}  // namespace smilab
