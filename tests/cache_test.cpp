// Tests for the set-associative cache model and the Convolve access-stream
// measurement that stands in for the paper's cachegrind step.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "smilab/apps/convolve/access_stream.h"
#include "smilab/cache/cache.h"

namespace smilab {
namespace {

TEST(SetAssocCacheTest, ColdMissThenHit) {
  SetAssocCache cache{CacheConfig{.size_bytes = 1024, .line_bytes = 64, .associativity = 2}};
  EXPECT_FALSE(cache.access(0x100));
  EXPECT_TRUE(cache.access(0x100));
  EXPECT_TRUE(cache.access(0x13F));  // same 64B line as 0x100
  EXPECT_EQ(cache.accesses(), 3u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(SetAssocCacheTest, SameLineSharesEntry) {
  SetAssocCache cache{CacheConfig{.size_bytes = 1024, .line_bytes = 64, .associativity = 2}};
  EXPECT_FALSE(cache.access(0x200));
  for (int off = 1; off < 64; ++off) EXPECT_TRUE(cache.access(0x200 + static_cast<std::uint64_t>(off)));
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(SetAssocCacheTest, LruEvictsOldest) {
  // 2-way, 64B lines, 256B cache -> 2 sets. Addresses 0, 256, 512 map to
  // set 0. Access 0, 256 (fills both ways), touch 0, then 512 evicts 256.
  SetAssocCache cache{CacheConfig{.size_bytes = 256, .line_bytes = 64, .associativity = 2}};
  EXPECT_FALSE(cache.access(0));
  EXPECT_FALSE(cache.access(256));
  EXPECT_TRUE(cache.access(0));     // 0 is now MRU
  EXPECT_FALSE(cache.access(512));  // evicts 256
  EXPECT_TRUE(cache.access(0));
  EXPECT_FALSE(cache.access(256));  // was evicted
}

TEST(SetAssocCacheTest, ConflictMissesWithLowAssociativity) {
  // Direct-mapped: two lines mapping to the same set thrash.
  SetAssocCache cache{CacheConfig{.size_bytes = 512, .line_bytes = 64, .associativity = 1}};
  const std::uint64_t a = 0;
  const std::uint64_t b = 512;  // same set (8 sets, stride 512 = 8*64)
  for (int i = 0; i < 10; ++i) {
    cache.access(a);
    cache.access(b);
  }
  EXPECT_EQ(cache.misses(), 20u);
}

TEST(SetAssocCacheTest, FlushDropsEverything) {
  SetAssocCache cache{CacheConfig{}};
  cache.access(0x40);
  cache.access(0x80);
  EXPECT_TRUE(cache.contains(0x40));
  cache.flush();
  EXPECT_FALSE(cache.contains(0x40));
  EXPECT_FALSE(cache.access(0x40));
}

TEST(SetAssocCacheTest, CapacityMissesOnBigWorkingSet) {
  // Stream 4x the cache size: second pass must still miss everywhere.
  SetAssocCache cache{CacheConfig{.size_bytes = 32 * 1024, .line_bytes = 64, .associativity = 8}};
  const std::uint64_t span = 128 * 1024;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t a = 0; a < span; a += 64) cache.access(a);
  }
  EXPECT_GT(cache.miss_rate(), 0.99);
}

TEST(SetAssocCacheTest, ContainsDoesNotPerturbLruOrStats) {
  SetAssocCache cache{CacheConfig{.size_bytes = 256, .line_bytes = 64, .associativity = 2}};
  cache.access(0);
  cache.access(256);
  const auto accesses = cache.accesses();
  EXPECT_TRUE(cache.contains(0));
  EXPECT_EQ(cache.accesses(), accesses);
  // contains(0) must not refresh LRU: 0 is still LRU, so 512 evicts 0.
  cache.access(512);
  EXPECT_FALSE(cache.contains(0));
}

TEST(CacheConfigTest, ValidConfigHasNoError) {
  EXPECT_TRUE(CacheConfig{}.validation_error().empty());
  const CacheConfig l1{.size_bytes = 32 * 1024, .line_bytes = 64,
                       .associativity = 8};
  EXPECT_TRUE(l1.validation_error().empty());
}

TEST(CacheConfigTest, RejectsNonPowerOfTwoLineSize) {
  const CacheConfig bad{.size_bytes = 960, .line_bytes = 48,
                        .associativity = 2};
  const std::string error = bad.validation_error();
  EXPECT_NE(error.find("line_bytes"), std::string::npos) << error;
  EXPECT_THROW(SetAssocCache{bad}, std::invalid_argument);
}

TEST(CacheConfigTest, RejectsSizeNotDivisibleByLineTimesAssoc) {
  // 1000 bytes is not a whole number of 2-way 64B sets.
  const CacheConfig bad{.size_bytes = 1000, .line_bytes = 64,
                        .associativity = 2};
  const std::string error = bad.validation_error();
  EXPECT_NE(error.find("multiple"), std::string::npos) << error;
  EXPECT_THROW(SetAssocCache{bad}, std::invalid_argument);
}

TEST(CacheConfigTest, RejectsNonPositiveFields) {
  const CacheConfig zero_size{.size_bytes = 0, .line_bytes = 64,
                              .associativity = 2};
  EXPECT_FALSE(zero_size.validation_error().empty());
  const CacheConfig zero_assoc{.size_bytes = 1024, .line_bytes = 64,
                               .associativity = 0};
  EXPECT_FALSE(zero_assoc.validation_error().empty());
}

TEST(CacheConfigTest, ThrowMessageNamesTheProblem) {
  const CacheConfig bad{.size_bytes = 1024, .line_bytes = 24,
                        .associativity = 2};
  try {
    SetAssocCache cache{bad};
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("power of two"), std::string::npos)
        << e.what();
  }
}

TEST(CacheHierarchyTest, MissWalksDownAndInstalls) {
  CacheHierarchy h = CacheHierarchy::e5620();
  EXPECT_EQ(h.access(0x1000), CacheLevel::kMemory);
  EXPECT_EQ(h.access(0x1000), CacheLevel::kL1);
  EXPECT_EQ(h.stats().accesses, 2u);
  EXPECT_EQ(h.stats().memory_accesses, 1u);
  EXPECT_EQ(h.stats().l1_hits, 1u);
}

TEST(CacheHierarchyTest, L2HitAfterL1Eviction) {
  // Stream enough lines to spill L1 (32KB) but stay inside L2 (256KB),
  // then re-touch the first line: should hit in L2.
  CacheHierarchy h = CacheHierarchy::e5620();
  for (std::uint64_t a = 0; a < 128 * 1024; a += 64) h.access(a);
  h.reset_stats();
  EXPECT_EQ(h.access(0), CacheLevel::kL2);
}

TEST(CacheHierarchyTest, FlushForcesMemoryAccess) {
  CacheHierarchy h = CacheHierarchy::e5620();
  h.access(0x2000);
  h.flush();
  h.reset_stats();
  EXPECT_EQ(h.access(0x2000), CacheLevel::kMemory);
}

TEST(CacheHierarchyTest, AverageLatencyWeightsLevels) {
  CacheHierarchy h = CacheHierarchy::e5620();
  h.access(0x40);  // memory
  h.access(0x40);  // L1
  // avg of {180, 1} = 90.5
  EXPECT_NEAR(h.average_latency_cycles(1, 10, 40, 180), 90.5, 1e-9);
}

// Deterministic xorshift address stream mixing tight line reuse (fast-path
// friendly), strided walks, and random far jumps (set conflicts, evictions).
template <typename Fn>
void replay_mixed_stream(Fn&& touch) {
  std::uint64_t state = 0x2545f4914f6cdd1dull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::uint64_t addr = 0;
  for (int i = 0; i < 200'000; ++i) {
    const std::uint64_t r = next();
    if (r % 8 < 5) {
      addr += r % 32;                 // stay on/near the current line
    } else if (r % 8 < 7) {
      addr += 64 + r % 192;           // short stride to a nearby line
    } else {
      addr = r % (8ull << 20);        // far jump inside an 8 MB footprint
    }
    touch(addr);
  }
}

TEST(CacheHierarchyTest, FastPathStatsIdenticalToSlowPath) {
  CacheHierarchy fast = CacheHierarchy::e5620();
  CacheHierarchy slow = CacheHierarchy::e5620();
  slow.set_fast_path(false);
  replay_mixed_stream([&](std::uint64_t a) {
    EXPECT_EQ(fast.access(a), slow.access(a));
  });
  EXPECT_EQ(fast.stats(), slow.stats());
  // And the resident state agrees, not just the counters: replaying a probe
  // sweep through both must classify every probe identically.
  for (std::uint64_t a = 0; a < (8ull << 20); a += 64 * 1024 + 64) {
    EXPECT_EQ(fast.access(a), slow.access(a));
  }
}

TEST(CacheHierarchyTest, FastPathConvolveStatsIdentical) {
  CacheHierarchy fast = CacheHierarchy::e5620();
  CacheHierarchy slow = CacheHierarchy::e5620();
  slow.set_fast_path(false);
  const CacheMeasurement a = measure_convolve_cache(
      ConvolveConfig::cache_unfriendly(), std::move(fast), 500'000);
  const CacheMeasurement b = measure_convolve_cache(
      ConvolveConfig::cache_unfriendly(), std::move(slow), 500'000);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.l1_miss_rate, b.l1_miss_rate);
  EXPECT_EQ(a.avg_latency_cycles, b.avg_latency_cycles);
}

TEST(CacheHierarchyTest, AccessRunMatchesScalarLoop) {
  CacheHierarchy batched = CacheHierarchy::e5620();
  CacheHierarchy scalar = CacheHierarchy::e5620();
  // A few shapes: unit stride, sub-line stride, line-crossing stride, and a
  // run that starts mid-line.
  const struct { std::uint64_t base; std::int64_t count; std::int64_t stride; }
      shapes[] = {{0, 5000, 4}, {0x1234, 3000, 8}, {0x40000, 1000, 64},
                  {0x7Ff8, 2000, 12}, {0x90000, 1, 4}, {0xA0000, 0, 4}};
  for (const auto& s : shapes) {
    batched.access_run(s.base, s.count, s.stride);
    for (std::int64_t i = 0; i < s.count; ++i) {
      scalar.access(s.base + static_cast<std::uint64_t>(i * s.stride));
    }
    EXPECT_EQ(batched.stats(), scalar.stats());
  }
}

TEST(CacheHierarchyTest, AccessInterleavedMatchesScalarPairs) {
  CacheHierarchy batched = CacheHierarchy::e5620();
  CacheHierarchy scalar = CacheHierarchy::e5620();
  // Convolve-shaped: image stream at one stride, kernel stream at another,
  // including a conflicting pair (same set, forcing the scalar fallback).
  const struct {
    std::uint64_t a; std::int64_t sa; std::uint64_t b; std::int64_t sb;
    std::int64_t pairs;
  } shapes[] = {{0x100000, 4, 0x500000, 4, 4000},
                {0x0, 16, 0x8000, 4, 2000},
                {0x200000, 4, 0x200040, 4, 100},
                {0x300000, 64, 0x600000, 64, 500}};
  for (const auto& s : shapes) {
    batched.access_interleaved(s.a, s.sa, s.b, s.sb, s.pairs);
    for (std::int64_t i = 0; i < s.pairs; ++i) {
      scalar.access(s.a + static_cast<std::uint64_t>(i * s.sa));
      scalar.access(s.b + static_cast<std::uint64_t>(i * s.sb));
    }
    EXPECT_EQ(batched.stats(), scalar.stats());
  }
}

// Golden pins captured from the seed build (scalar engine, no fast path):
// the hot-path rework must keep the measurement bit-identical, because the
// Figure-1 calibration (cycles/ref) feeds every Convolve simulation.
TEST(ConvolveCacheMeasurementTest, GoldenPinCacheFriendly) {
  const CacheMeasurement m = measure_convolve_cache(
      ConvolveConfig::cache_friendly(), CacheHierarchy::e5620(), 2'000'000);
  EXPECT_EQ(m.stats.accesses, 2'003'900u);
  EXPECT_EQ(m.stats.l1_hits, 2'003'349u);
  EXPECT_EQ(m.stats.l2_hits, 0u);
  EXPECT_EQ(m.stats.l3_hits, 0u);
  EXPECT_EQ(m.stats.memory_accesses, 551u);
  EXPECT_EQ(m.l1_miss_rate, 0.00027496382054992762);
  EXPECT_EQ(m.avg_latency_cycles, 1.0492185238784371);
}

TEST(ConvolveCacheMeasurementTest, GoldenPinCacheUnfriendly) {
  const CacheMeasurement m = measure_convolve_cache(
      ConvolveConfig::cache_unfriendly(), CacheHierarchy::e5620(), 2'000'000);
  EXPECT_EQ(m.stats.accesses, 2'000'016u);
  EXPECT_EQ(m.stats.l1_hits, 947'763u);
  EXPECT_EQ(m.stats.l2_hits, 2'813u);
  EXPECT_EQ(m.stats.l3_hits, 130'201u);
  EXPECT_EQ(m.stats.memory_accesses, 919'239u);
  EXPECT_EQ(m.l1_miss_rate, 0.52612229102167185);
  EXPECT_EQ(m.avg_latency_cycles, 85.822789917680652);
}

TEST(ConvolveCacheMeasurementTest, CacheFriendlyIsLowMiss) {
  const CacheMeasurement m = measure_convolve_cache(
      ConvolveConfig::cache_friendly(), CacheHierarchy::e5620(), 5'000'000);
  EXPECT_LT(m.l1_miss_rate, 0.05);
  EXPECT_GT(m.stats.accesses, 4'000'000u);
}

TEST(ConvolveCacheMeasurementTest, CacheUnfriendlyIsHighMiss) {
  const CacheMeasurement m = measure_convolve_cache(
      ConvolveConfig::cache_unfriendly(), CacheHierarchy::e5620(), 5'000'000);
  EXPECT_GT(m.l1_miss_rate, 0.40);
}

TEST(ConvolveCacheMeasurementTest, ContrastMatchesPaperSelection) {
  // The paper's pair: ~1% vs ~70% misses. We require a >=15x contrast and
  // correspondingly separated per-reference latency.
  const CacheMeasurement cf = measure_convolve_cache(
      ConvolveConfig::cache_friendly(), CacheHierarchy::e5620(), 2'000'000);
  const CacheMeasurement cu = measure_convolve_cache(
      ConvolveConfig::cache_unfriendly(), CacheHierarchy::e5620(), 2'000'000);
  EXPECT_GT(cu.l1_miss_rate / cf.l1_miss_rate, 15.0);
  EXPECT_GT(cu.avg_latency_cycles, 3.0 * cf.avg_latency_cycles);
}

TEST(ConvolveCacheMeasurementTest, RefCountsMatchFormula) {
  ConvolveConfig cfg = ConvolveConfig::cache_friendly();
  EXPECT_EQ(cfg.refs_per_output_pixel(), 2 * 61 * 61 + 1);
  cfg = ConvolveConfig::cache_unfriendly();
  EXPECT_EQ(cfg.refs_per_output_pixel(), 19);
  EXPECT_EQ(cfg.output_pixels(), 16'000'000);
}

TEST(ConvolveCacheMeasurementTest, DeterministicReplay) {
  const CacheMeasurement a = measure_convolve_cache(
      ConvolveConfig::cache_unfriendly(), CacheHierarchy::e5620(), 1'000'000);
  const CacheMeasurement b = measure_convolve_cache(
      ConvolveConfig::cache_unfriendly(), CacheHierarchy::e5620(), 1'000'000);
  EXPECT_EQ(a.stats.l1_hits, b.stats.l1_hits);
  EXPECT_EQ(a.stats.memory_accesses, b.stats.memory_accesses);
}

}  // namespace
}  // namespace smilab
