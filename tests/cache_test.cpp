// Tests for the set-associative cache model and the Convolve access-stream
// measurement that stands in for the paper's cachegrind step.
#include <gtest/gtest.h>

#include "smilab/apps/convolve/access_stream.h"
#include "smilab/cache/cache.h"

namespace smilab {
namespace {

TEST(SetAssocCacheTest, ColdMissThenHit) {
  SetAssocCache cache{CacheConfig{.size_bytes = 1024, .line_bytes = 64, .associativity = 2}};
  EXPECT_FALSE(cache.access(0x100));
  EXPECT_TRUE(cache.access(0x100));
  EXPECT_TRUE(cache.access(0x13F));  // same 64B line as 0x100
  EXPECT_EQ(cache.accesses(), 3u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(SetAssocCacheTest, SameLineSharesEntry) {
  SetAssocCache cache{CacheConfig{.size_bytes = 1024, .line_bytes = 64, .associativity = 2}};
  EXPECT_FALSE(cache.access(0x200));
  for (int off = 1; off < 64; ++off) EXPECT_TRUE(cache.access(0x200 + static_cast<std::uint64_t>(off)));
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(SetAssocCacheTest, LruEvictsOldest) {
  // 2-way, 64B lines, 256B cache -> 2 sets. Addresses 0, 256, 512 map to
  // set 0. Access 0, 256 (fills both ways), touch 0, then 512 evicts 256.
  SetAssocCache cache{CacheConfig{.size_bytes = 256, .line_bytes = 64, .associativity = 2}};
  EXPECT_FALSE(cache.access(0));
  EXPECT_FALSE(cache.access(256));
  EXPECT_TRUE(cache.access(0));     // 0 is now MRU
  EXPECT_FALSE(cache.access(512));  // evicts 256
  EXPECT_TRUE(cache.access(0));
  EXPECT_FALSE(cache.access(256));  // was evicted
}

TEST(SetAssocCacheTest, ConflictMissesWithLowAssociativity) {
  // Direct-mapped: two lines mapping to the same set thrash.
  SetAssocCache cache{CacheConfig{.size_bytes = 512, .line_bytes = 64, .associativity = 1}};
  const std::uint64_t a = 0;
  const std::uint64_t b = 512;  // same set (8 sets, stride 512 = 8*64)
  for (int i = 0; i < 10; ++i) {
    cache.access(a);
    cache.access(b);
  }
  EXPECT_EQ(cache.misses(), 20u);
}

TEST(SetAssocCacheTest, FlushDropsEverything) {
  SetAssocCache cache{CacheConfig{}};
  cache.access(0x40);
  cache.access(0x80);
  EXPECT_TRUE(cache.contains(0x40));
  cache.flush();
  EXPECT_FALSE(cache.contains(0x40));
  EXPECT_FALSE(cache.access(0x40));
}

TEST(SetAssocCacheTest, CapacityMissesOnBigWorkingSet) {
  // Stream 4x the cache size: second pass must still miss everywhere.
  SetAssocCache cache{CacheConfig{.size_bytes = 32 * 1024, .line_bytes = 64, .associativity = 8}};
  const std::uint64_t span = 128 * 1024;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t a = 0; a < span; a += 64) cache.access(a);
  }
  EXPECT_GT(cache.miss_rate(), 0.99);
}

TEST(SetAssocCacheTest, ContainsDoesNotPerturbLruOrStats) {
  SetAssocCache cache{CacheConfig{.size_bytes = 256, .line_bytes = 64, .associativity = 2}};
  cache.access(0);
  cache.access(256);
  const auto accesses = cache.accesses();
  EXPECT_TRUE(cache.contains(0));
  EXPECT_EQ(cache.accesses(), accesses);
  // contains(0) must not refresh LRU: 0 is still LRU, so 512 evicts 0.
  cache.access(512);
  EXPECT_FALSE(cache.contains(0));
}

TEST(CacheHierarchyTest, MissWalksDownAndInstalls) {
  CacheHierarchy h = CacheHierarchy::e5620();
  EXPECT_EQ(h.access(0x1000), CacheLevel::kMemory);
  EXPECT_EQ(h.access(0x1000), CacheLevel::kL1);
  EXPECT_EQ(h.stats().accesses, 2u);
  EXPECT_EQ(h.stats().memory_accesses, 1u);
  EXPECT_EQ(h.stats().l1_hits, 1u);
}

TEST(CacheHierarchyTest, L2HitAfterL1Eviction) {
  // Stream enough lines to spill L1 (32KB) but stay inside L2 (256KB),
  // then re-touch the first line: should hit in L2.
  CacheHierarchy h = CacheHierarchy::e5620();
  for (std::uint64_t a = 0; a < 128 * 1024; a += 64) h.access(a);
  h.reset_stats();
  EXPECT_EQ(h.access(0), CacheLevel::kL2);
}

TEST(CacheHierarchyTest, FlushForcesMemoryAccess) {
  CacheHierarchy h = CacheHierarchy::e5620();
  h.access(0x2000);
  h.flush();
  h.reset_stats();
  EXPECT_EQ(h.access(0x2000), CacheLevel::kMemory);
}

TEST(CacheHierarchyTest, AverageLatencyWeightsLevels) {
  CacheHierarchy h = CacheHierarchy::e5620();
  h.access(0x40);  // memory
  h.access(0x40);  // L1
  // avg of {180, 1} = 90.5
  EXPECT_NEAR(h.average_latency_cycles(1, 10, 40, 180), 90.5, 1e-9);
}

TEST(ConvolveCacheMeasurementTest, CacheFriendlyIsLowMiss) {
  const CacheMeasurement m = measure_convolve_cache(
      ConvolveConfig::cache_friendly(), CacheHierarchy::e5620(), 5'000'000);
  EXPECT_LT(m.l1_miss_rate, 0.05);
  EXPECT_GT(m.stats.accesses, 4'000'000u);
}

TEST(ConvolveCacheMeasurementTest, CacheUnfriendlyIsHighMiss) {
  const CacheMeasurement m = measure_convolve_cache(
      ConvolveConfig::cache_unfriendly(), CacheHierarchy::e5620(), 5'000'000);
  EXPECT_GT(m.l1_miss_rate, 0.40);
}

TEST(ConvolveCacheMeasurementTest, ContrastMatchesPaperSelection) {
  // The paper's pair: ~1% vs ~70% misses. We require a >=15x contrast and
  // correspondingly separated per-reference latency.
  const CacheMeasurement cf = measure_convolve_cache(
      ConvolveConfig::cache_friendly(), CacheHierarchy::e5620(), 2'000'000);
  const CacheMeasurement cu = measure_convolve_cache(
      ConvolveConfig::cache_unfriendly(), CacheHierarchy::e5620(), 2'000'000);
  EXPECT_GT(cu.l1_miss_rate / cf.l1_miss_rate, 15.0);
  EXPECT_GT(cu.avg_latency_cycles, 3.0 * cf.avg_latency_cycles);
}

TEST(ConvolveCacheMeasurementTest, RefCountsMatchFormula) {
  ConvolveConfig cfg = ConvolveConfig::cache_friendly();
  EXPECT_EQ(cfg.refs_per_output_pixel(), 2 * 61 * 61 + 1);
  cfg = ConvolveConfig::cache_unfriendly();
  EXPECT_EQ(cfg.refs_per_output_pixel(), 19);
  EXPECT_EQ(cfg.output_pixels(), 16'000'000);
}

TEST(ConvolveCacheMeasurementTest, DeterministicReplay) {
  const CacheMeasurement a = measure_convolve_cache(
      ConvolveConfig::cache_unfriendly(), CacheHierarchy::e5620(), 1'000'000);
  const CacheMeasurement b = measure_convolve_cache(
      ConvolveConfig::cache_unfriendly(), CacheHierarchy::e5620(), 1'000'000);
  EXPECT_EQ(a.stats.l1_hits, b.stats.l1_hits);
  EXPECT_EQ(a.stats.memory_accesses, b.stats.memory_accesses);
}

}  // namespace
}  // namespace smilab
