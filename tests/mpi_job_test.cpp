// Tests for rank placement helpers, the MPI job launcher, and the
// experiment runner utilities.
#include <gtest/gtest.h>

#include <stdexcept>

#include "smilab/core/experiment.h"
#include "smilab/mpi/job.h"

namespace smilab {
namespace {

TEST(PlacementTest, BlockPlacementFillsNodes) {
  const auto placement = block_placement(8, 4);
  EXPECT_EQ(placement, (std::vector<int>{0, 0, 0, 0, 1, 1, 1, 1}));
  EXPECT_EQ(node_count_for(8, 4), 2);
  EXPECT_EQ(node_count_for(1, 4), 1);
  EXPECT_EQ(node_count_for(5, 4), 2);
}

TEST(PlacementTest, OneRankPerNode) {
  const auto placement = block_placement(4, 1);
  EXPECT_EQ(placement, (std::vector<int>{0, 1, 2, 3}));
}

TEST(RankProgramTest, BuilderAccumulatesActions) {
  RankProgram rp{1, 4};
  rp.compute(milliseconds(5));
  rp.compute(SimDuration::zero());  // zero work is elided
  rp.send(0, 128, 7);
  rp.recv(2, 8);
  rp.sendrecv(3, 64, 9, 3, 9);
  rp.sleep(milliseconds(1));
  EXPECT_EQ(rp.size(), 5u);
  const auto actions = RankProgram{rp}.take();
  EXPECT_TRUE(std::holds_alternative<Compute>(actions[0]));
  EXPECT_TRUE(std::holds_alternative<Send>(actions[1]));
  EXPECT_TRUE(std::holds_alternative<Recv>(actions[2]));
  EXPECT_TRUE(std::holds_alternative<SendRecv>(actions[3]));
  EXPECT_TRUE(std::holds_alternative<Sleep>(actions[4]));
}

TEST(TagAllocatorTest, WindowsDoNotOverlap) {
  TagAllocator tags;
  const int a = tags.allocate(4);
  const int b = tags.allocate(2);
  const int c = tags.allocate();
  EXPECT_GE(b, a + 4);
  EXPECT_GE(c, b + 2);
}

TEST(MpiJobTest, RunsAndReportsPerRankStats) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = 2;
  cfg.net = NetworkParams::wyeast();
  cfg.seed = 12;
  System sys{cfg};
  auto programs = make_rank_programs(2);
  programs[0].compute(milliseconds(100));
  programs[0].send(1, 4096, 1);
  programs[1].recv(0, 1);
  programs[1].compute(milliseconds(50));
  const MpiJobResult result = run_mpi_job(sys, std::move(programs),
                                          block_placement(2, 1),
                                          WorkloadProfile::dense_fp(), "job");
  EXPECT_EQ(result.rank_stats.size(), 2u);
  EXPECT_GT(result.elapsed, milliseconds(150));
  EXPECT_EQ(result.rank_stats[0].messages_sent, 1);
  EXPECT_EQ(result.rank_stats[1].messages_received, 1);
  EXPECT_EQ(result.rank_stats[0].bytes_sent, 4096);
  EXPECT_EQ(sys.task_name(result.rank_tasks[0]), "job.rank0");
}

TEST(MpiJobTest, RejectsMismatchedPlacement) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  System sys{cfg};
  auto programs = make_rank_programs(2);
  EXPECT_THROW(run_mpi_job(sys, std::move(programs), {0},
                           WorkloadProfile::dense_fp()),
               std::invalid_argument);
}

TEST(MpiJobTest, TotalSmmStolenAggregates) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = 2;
  cfg.net = NetworkParams::wyeast();
  cfg.smi = SmiConfig::long_every_second();
  cfg.seed = 13;
  System sys{cfg};
  auto programs = make_rank_programs(2);
  for (auto& rp : programs) rp.compute(seconds(5));
  const MpiJobResult result = run_mpi_job(sys, std::move(programs),
                                          block_placement(2, 1),
                                          WorkloadProfile::dense_fp());
  EXPECT_GT(result.total_smm_stolen(), milliseconds(500));
}

TEST(ExperimentRunnerTest, RunsRequestedTrials) {
  const ExperimentRunner runner{5, 42};
  int calls = 0;
  const OnlineStats stats = runner.run([&](std::uint64_t seed) {
    ++calls;
    return static_cast<double>(seed % 97);
  });
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(stats.count(), 5u);
}

TEST(ExperimentRunnerTest, SeedsAreDistinct) {
  const ExperimentRunner runner{8, 1};
  std::vector<std::uint64_t> seeds;
  const OnlineStats stats = runner.run([&](std::uint64_t seed) {
    seeds.push_back(seed);
    return 0.0;
  });
  EXPECT_EQ(stats.count(), 8u);
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(ComparisonTest, DeltaAndPct) {
  Comparison cmp;
  cmp.base.add(10.0);
  cmp.treatment.add(11.5);
  EXPECT_NEAR(cmp.delta(), 1.5, 1e-12);
  EXPECT_NEAR(cmp.pct(), 15.0, 1e-9);
}

}  // namespace
}  // namespace smilab
