// Tests for the Convolve simulator workload (Figure 1 machinery).
#include <gtest/gtest.h>

#include "smilab/apps/convolve/workload.h"

namespace smilab {
namespace {

TEST(ConvolveWorkloadTest, MeasuredCacheBehaviourContrasts) {
  const auto cf = ConvolveWorkload::cache_friendly_workload();
  const auto cu = ConvolveWorkload::cache_unfriendly_workload();
  EXPECT_LT(cf.cache.l1_miss_rate, 0.05);
  EXPECT_GT(cu.cache.l1_miss_rate, 0.40);
  EXPECT_GT(cu.cache.avg_latency_cycles, cf.cache.avg_latency_cycles * 10);
  EXPECT_EQ(cf.threads, 24);
  EXPECT_EQ(cu.threads, 24);
}

TEST(ConvolveWorkloadTest, TotalWorkIsTensOfSeconds) {
  const auto cf = ConvolveWorkload::cache_friendly_workload();
  const auto cu = ConvolveWorkload::cache_unfriendly_workload();
  EXPECT_GT(cf.total_work_seconds(2.4), 8.0);
  EXPECT_LT(cf.total_work_seconds(2.4), 80.0);
  EXPECT_GT(cu.total_work_seconds(2.4), 8.0);
  EXPECT_LT(cu.total_work_seconds(2.4), 80.0);
}

TEST(ConvolveWorkloadTest, BaselineScalesWithPhysicalCores) {
  const auto workload = ConvolveWorkload::cache_unfriendly_workload();
  const double one = run_convolve_sim(workload, 1, SmiConfig::none(), 1).seconds;
  const double four = run_convolve_sim(workload, 4, SmiConfig::none(), 1).seconds;
  EXPECT_NEAR(one / four, 4.0, 0.2);
}

TEST(ConvolveWorkloadTest, HttAddsLittleForCacheHostileThreads) {
  // The paper: CU "did not benefit greatly from HTT" — 4 vs 8 logical CPUs
  // nearly identical.
  const auto workload = ConvolveWorkload::cache_unfriendly_workload();
  const double four = run_convolve_sim(workload, 4, SmiConfig::none(), 1).seconds;
  const double eight = run_convolve_sim(workload, 8, SmiConfig::none(), 1).seconds;
  EXPECT_NEAR(eight, four, four * 0.1);
}

TEST(ConvolveWorkloadTest, SmiKneeAround600ms) {
  // Figure 1: minimal impact for gaps >= ~600 ms, dramatic below.
  const auto workload = ConvolveWorkload::cache_friendly_workload();
  const double base = run_convolve_sim(workload, 4, SmiConfig::none(), 2).seconds;
  const double at_600 =
      run_convolve_sim(workload, 4, SmiConfig::long_with_gap(600), 2).seconds;
  const double at_50 =
      run_convolve_sim(workload, 4, SmiConfig::long_with_gap(50), 2).seconds;
  EXPECT_LT(at_600 / base, 1.30);   // moderate at the knee
  EXPECT_GT(at_50 / base, 2.5);     // blow-up at 50 ms gaps
  EXPECT_LT(at_50 / base, 4.0);     // bounded by gap/(gap+duration) math
}

TEST(ConvolveWorkloadTest, GapFromExitBoundsTheBlowup) {
  // Because the driver re-arms after SMM exit, availability at gap g is
  // g/(g+dur): at 50 ms that is ~32%, so slowdown ~3.1x, never a livelock.
  const auto workload = ConvolveWorkload::cache_unfriendly_workload();
  const double base = run_convolve_sim(workload, 1, SmiConfig::none(), 3).seconds;
  const double noisy =
      run_convolve_sim(workload, 1, SmiConfig::long_with_gap(50), 3).seconds;
  EXPECT_NEAR(noisy / base, 1.0 / (50.0 / 155.0), 0.35);
}

TEST(ConvolveWorkloadTest, SmmStolenTimeAccountedAcrossThreads) {
  const auto workload = ConvolveWorkload::cache_unfriendly_workload();
  const auto result =
      run_convolve_sim(workload, 4, SmiConfig::long_with_gap(500), 7);
  EXPECT_GT(result.smi_hits, 0);
  EXPECT_GT(result.smm_stolen_seconds, 0.0);
}

TEST(ConvolveWorkloadTest, DeterministicPerSeed) {
  const auto workload = ConvolveWorkload::cache_friendly_workload();
  const double a =
      run_convolve_sim(workload, 6, SmiConfig::long_with_gap(200), 9).seconds;
  const double b =
      run_convolve_sim(workload, 6, SmiConfig::long_with_gap(200), 9).seconds;
  EXPECT_DOUBLE_EQ(a, b);
  const double c =
      run_convolve_sim(workload, 6, SmiConfig::long_with_gap(200), 10).seconds;
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace smilab
