// Tests for the noise toolkit: hwlat-style detection against ground truth,
// FTQ slip characterization, OS-noise injection, and attribution analysis.
#include <gtest/gtest.h>

#include "smilab/noise/ftq.h"
#include "smilab/noise/hwlat.h"
#include "smilab/noise/injector.h"

namespace smilab {
namespace {

SystemConfig detector_config(SmiConfig smi) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::poweredge_r410_e5620();
  cfg.node_count = 1;
  cfg.smi = smi;
  cfg.seed = 77;
  return cfg;
}

TEST(HwlatTest, QuietSystemReportsNothing) {
  System sys{detector_config(SmiConfig::none())};
  HwlatConfig config;
  config.duration = seconds(5);
  const HwlatReport report = run_hwlat_detector(sys, config);
  EXPECT_GT(report.samples, 1000);
  EXPECT_EQ(report.hits, 0);
  EXPECT_EQ(report.true_smis_during_windows, 0);
}

TEST(HwlatTest, DetectsLongSmis) {
  System sys{detector_config(SmiConfig::long_every_second())};
  HwlatConfig config;
  config.duration = seconds(20);
  config.window = seconds(1);  // continuous sampling: catch everything
  config.period = seconds(1);
  const HwlatReport report = run_hwlat_detector(sys, config);
  EXPECT_GT(report.true_smis_during_windows, 10);
  EXPECT_GE(report.recall, 0.95);
  // Detected gaps sit in the long-SMI band (100-110 ms) plus refill slop.
  EXPECT_GT(report.gap_us.mean(), 95'000.0);
  EXPECT_LT(report.gap_us.mean(), 135'000.0);
  EXPECT_LT(report.mean_duration_error_us, 15'000.0);
}

TEST(HwlatTest, DetectsShortSmisAboveThreshold) {
  System sys{detector_config(SmiConfig::short_every_second())};
  HwlatConfig config;
  config.duration = seconds(20);
  config.window = seconds(1);
  config.period = seconds(1);
  const HwlatReport report = run_hwlat_detector(sys, config);
  EXPECT_GE(report.recall, 0.95);
  EXPECT_GT(report.gap_us.mean(), 900.0);   // short band: 1-3 ms
  EXPECT_LT(report.gap_us.mean(), 4'000.0);
}

TEST(HwlatTest, WindowedSamplingMissesOutOfWindowSmis) {
  // Sampling part of the time with a period incommensurate with the SMI
  // interval: some SMIs fall outside windows (undetectable), and recall
  // within windows stays high.
  System sys{detector_config(SmiConfig::long_every_second())};
  HwlatConfig config;
  config.duration = seconds(30);
  config.window = milliseconds(300);
  config.period = milliseconds(700);
  const HwlatReport report = run_hwlat_detector(sys, config);
  const auto total_smis = sys.smm_accounting().smi_count(0);
  EXPECT_LT(report.true_smis_during_windows, total_smis);
  EXPECT_GT(report.true_smis_during_windows, 0);
  EXPECT_GE(report.recall, 0.9);
}

TEST(HwlatTest, SleepPhaseLocksWithMatchingSmiInterval) {
  // Emergent artifact worth pinning down: when the detector's period
  // equals the SMI interval, a sleep that expires during SMM is deferred
  // to exactly SMM exit — the schedules phase-lock and every SMI hides in
  // the sleep. Real hwlat users should sample with a period incommensurate
  // with any suspected SMI interval.
  System sys{detector_config(SmiConfig::long_every_second())};
  HwlatConfig config;
  config.duration = seconds(30);
  config.window = milliseconds(400);
  config.period = seconds(1);  // == the SMI interval
  const HwlatReport report = run_hwlat_detector(sys, config);
  EXPECT_EQ(report.hits, 0);
  EXPECT_GT(sys.smm_accounting().smi_count(0), 20);
}

TEST(FtqTest, QuietSystemHasTinySlip) {
  System sys{detector_config(SmiConfig::none())};
  FtqConfig config;
  config.duration = seconds(5);
  const FtqReport report = run_ftq(sys, config);
  EXPECT_GT(report.quanta, 4000);
  EXPECT_LT(report.slip_us.mean(), 1.0);
  EXPECT_EQ(report.big_slips, 0);
}

TEST(FtqTest, LongSmisShowAsRareBigSlips) {
  System sys{detector_config(SmiConfig::long_every_second())};
  FtqConfig config;
  config.duration = seconds(20);
  const FtqReport report = run_ftq(sys, config);
  EXPECT_GT(report.big_slips, 10);
  EXPECT_GT(report.max_slip_us, 90'000.0);
  // Rare: far fewer big slips than quanta.
  EXPECT_LT(report.big_slips * 100, report.quanta);
  // Average noise share approximates the duty cycle (~10.5%).
  EXPECT_NEAR(report.noise_fraction(config.quantum), 0.105, 0.04);
}

TEST(OsNoiseInjectorTest, SingleCpuNoiseDoesNotStopOtherCpus) {
  // Two compute tasks on different cores; noise pinned to CPU 0. The CPU-1
  // task must be unaffected while the CPU-0 task absorbs the duty cycle.
  SystemConfig cfg = detector_config(SmiConfig::none());
  System sys{cfg};
  OsNoiseConfig noise;
  noise.duration = milliseconds(105);
  noise.interval = seconds(1);
  noise.cpu = 0;
  OsNoiseInjector injector{sys, noise};

  auto spawn_on = [&](int cpu) {
    TaskSpec spec;
    spec.name = "t" + std::to_string(cpu);
    spec.node = 0;
    spec.pinned_cpu = cpu;
    std::vector<Action> prog;
    prog.push_back(Compute{seconds(10)});
    spec.actions = std::make_unique<VectorActions>(std::move(prog));
    return sys.spawn(std::move(spec));
  };
  const TaskId victim = spawn_on(0);
  const TaskId bystander = spawn_on(1);
  sys.run();

  const double victim_wall =
      (sys.task_stats(victim).end_time - sys.task_stats(victim).start_time).seconds();
  const double bystander_wall =
      (sys.task_stats(bystander).end_time - sys.task_stats(bystander).start_time).seconds();
  EXPECT_GT(victim_wall, 10.8);
  EXPECT_NEAR(bystander_wall, 10.0, 1e-6);
  EXPECT_GT(injector.events(), 9);
}

TEST(OsNoiseInjectorTest, OsNoiseIsNotChargedToTheTask) {
  // Unlike SMM, OS-level preemption is visible to the kernel: the victim's
  // OS-view CPU time must not include the stolen time.
  System sys{detector_config(SmiConfig::none())};
  OsNoiseConfig noise;
  noise.cpu = 0;
  OsNoiseInjector injector{sys, noise};
  TaskSpec spec;
  spec.name = "victim";
  spec.node = 0;
  spec.pinned_cpu = 0;
  std::vector<Action> prog;
  prog.push_back(Compute{seconds(5)});
  spec.actions = std::make_unique<VectorActions>(std::move(prog));
  const TaskId id = sys.spawn(std::move(spec));
  sys.run();
  const TaskStats& stats = sys.task_stats(id);
  EXPECT_NEAR(stats.os_view_cpu_time.seconds(), 5.0, 1e-6);
  EXPECT_NEAR(stats.true_cpu_time.seconds(), 5.0, 1e-6);
  EXPECT_GT((stats.end_time - stats.start_time).seconds(), 5.3);
}

TEST(AttributionTest, SmmTimeIsMisattributed) {
  SystemConfig cfg = detector_config(SmiConfig::long_every_second());
  cfg.machine.hot_set_bytes = 0;
  System sys{cfg};
  std::vector<Action> prog;
  prog.push_back(Compute{seconds(10)});
  const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, std::move(prog)));
  sys.run();
  const AttributionReport report = AttributionReport::from(sys.task_stats(id));
  EXPECT_GT(report.misattributed.seconds(), 0.8);
  EXPECT_NEAR(report.misattribution_fraction, 0.095, 0.03);
  EXPECT_EQ(report.misattributed.ns(),
            (report.os_view - report.true_time).ns());
}

TEST(AttributionTest, CleanRunHasNoMisattribution) {
  System sys{detector_config(SmiConfig::none())};
  std::vector<Action> prog;
  prog.push_back(Compute{seconds(3)});
  const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, std::move(prog)));
  sys.run();
  const AttributionReport report = AttributionReport::from(sys.task_stats(id));
  EXPECT_EQ(report.misattributed, SimDuration::zero());
  EXPECT_EQ(report.misattribution_fraction, 0.0);
}

}  // namespace
}  // namespace smilab
