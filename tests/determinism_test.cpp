// Determinism regression suite for the transport's unordered containers
// (smilint rule D3 made executable).
//
// Two structures in sim/transport.h are hash maps: the UnexpectedQueue's
// (src,tag)/tag bucket maps and the AckRouter. Hash iteration order is
// unspecified and changes across libstdc++ versions, so it must never
// reach simulation state. These tests permute insertion order and assert
// the observable outcome is bit-identical (FNV-1a over the observation
// stream), pinning:
//
//  * UnexpectedQueue::clear() drains via SORTED tag keys — the pool
//    free-list left behind (which decides the slab index of every future
//    allocation) is a function of queue content, not of hash order or of
//    cross-tag insertion interleaving.
//  * AckRouter is match-by-key only: any insertion order yields the same
//    lookup results, and draining by key leaves it empty.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "smilab/sim/transport.h"

namespace smilab {
namespace {

class Fnv {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ull;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/// One queued message's identity: enough to recognize it independently of
/// the slab index it happened to land in.
struct Ident {
  int src;
  int tag;
  std::int64_t bytes;
};

/// Push `idents`, in that order, as arrived unexpected messages; returns
/// the slab index each identity landed in.
std::vector<std::uint32_t> push_all(MessagePool& pool, UnexpectedQueue& queue,
                                    const std::vector<Ident>& idents) {
  std::vector<std::uint32_t> slots;
  slots.reserve(idents.size());
  for (const Ident& id : idents) {
    const MsgHandle h = pool.alloc();
    MessageRec& rec = pool.ref(h);
    rec.src_rank = id.src;
    rec.tag = id.tag;
    rec.bytes = id.bytes;
    rec.arrived = true;
    queue.push(pool, h);
    slots.push_back(h.index);
  }
  return slots;
}

/// After clear(), the pool hands back recycled slots in free-list order.
/// Map each allocation back to the identity that previously occupied the
/// slot and hash the identity sequence: the "who gets recycled when"
/// golden trace.
std::uint64_t recycle_trace_hash(const std::vector<Ident>& insertion_order) {
  MessagePool pool;
  UnexpectedQueue queue;
  const std::vector<std::uint32_t> slots =
      push_all(pool, queue, insertion_order);
  queue.clear(pool);
  EXPECT_EQ(pool.live(), 0u);
  pool.check_invariants();

  Fnv hash;
  for (std::size_t i = 0; i < insertion_order.size(); ++i) {
    const MsgHandle h = pool.alloc();
    // Find which identity lived in this slot before the clear.
    for (std::size_t k = 0; k < slots.size(); ++k) {
      if (slots[k] == h.index) {
        hash.mix(static_cast<std::uint64_t>(insertion_order[k].src));
        hash.mix(static_cast<std::uint64_t>(insertion_order[k].tag));
        hash.mix(static_cast<std::uint64_t>(insertion_order[k].bytes));
        break;
      }
    }
  }
  return hash.value();
}

/// 20 tags x 3 messages each. `stride` scrambles the cross-tag
/// interleaving while keeping each tag's arrival order fixed — the part
/// of insertion order that is semantically meaningful (MPI arrival order)
/// stays identical; only the hash-map-shaping part varies.
std::vector<Ident> interleaved(int stride) {
  constexpr int kTags = 20;
  constexpr int kPerTag = 3;
  std::vector<Ident> out;
  int emitted[kTags] = {};
  int cursor = 0;
  while (static_cast<int>(out.size()) < kTags * kPerTag) {
    const int tag = cursor % kTags;
    cursor += stride;
    if (emitted[tag] < kPerTag) {
      const int seq = emitted[tag]++;
      out.push_back({/*src=*/tag % 4, /*tag=*/tag,
                     /*bytes=*/static_cast<std::int64_t>(100 * tag + seq)});
    }
  }
  return out;
}

TEST(UnexpectedQueueDeterminismTest, ClearRecyclesInSortedTagOrder) {
  // Content-determined expectation, computed without touching the maps:
  // clear() releases tag-by-tag in ascending tag order, arrival order
  // within a tag; the free list is LIFO, so allocation hands slots back in
  // exactly the reverse of that release sequence.
  const std::vector<Ident> order = interleaved(1);
  MessagePool pool;
  UnexpectedQueue queue;
  const std::vector<std::uint32_t> slots = push_all(pool, queue, order);
  queue.clear(pool);

  std::vector<std::uint32_t> expected_release;
  for (int tag = 0; tag < 20; ++tag) {
    for (std::size_t k = 0; k < order.size(); ++k) {
      if (order[k].tag == tag) expected_release.push_back(slots[k]);
    }
  }
  for (auto it = expected_release.rbegin(); it != expected_release.rend();
       ++it) {
    EXPECT_EQ(pool.alloc().index, *it);
  }
}

TEST(UnexpectedQueueDeterminismTest, RecycleTraceInvariantToInsertionOrder) {
  // Permute the cross-tag interleaving of 60 arrivals; the post-clear
  // recycle trace must hash identically. A reversion of clear() to
  // hash-order iteration breaks this: the maps' internal layout depends
  // on the interleaving, the content does not.
  const std::uint64_t golden = recycle_trace_hash(interleaved(1));
  for (const int stride : {3, 7, 11, 19}) {
    EXPECT_EQ(recycle_trace_hash(interleaved(stride)), golden)
        << "stride " << stride;
  }
}

TEST(AckRouterDeterminismTest, MatchByKeyInvariantToInsertionOrder) {
  // The router must behave as a pure key -> value map: any insertion
  // order, same lookups. (It exposes no iteration API — this test plus
  // smilint's D3 rule keep it that way.)
  constexpr int kRoutes = 64;
  auto drain_hash = [](int stride) -> std::uint64_t {
    AckRouter router;
    for (int i = 0; i < kRoutes; ++i) {
      const int k = (i * stride) % kRoutes;
      AckTarget t;
      t.task = TaskId{k};
      t.nb_handle = k % 5 - 1;
      t.dst_rank = k % 7;
      t.tag = 1000 + k;
      router.add(static_cast<std::uint64_t>(k) * 0x9e3779b9u, t);
    }
    EXPECT_EQ(router.size(), static_cast<std::size_t>(kRoutes));
    Fnv hash;
    for (int k = 0; k < kRoutes; ++k) {
      const std::uint64_t key = static_cast<std::uint64_t>(k) * 0x9e3779b9u;
      const AckTarget* route = router.find(key);
      EXPECT_NE(route, nullptr);
      if (route == nullptr) return 0;
      hash.mix(static_cast<std::uint64_t>(route->task.value));
      hash.mix(static_cast<std::uint64_t>(route->nb_handle));
      hash.mix(static_cast<std::uint64_t>(route->dst_rank));
      hash.mix(static_cast<std::uint64_t>(route->tag));
      router.erase(key);
    }
    EXPECT_EQ(router.size(), 0u);
    return hash.value();
  };
  const std::uint64_t golden = drain_hash(1);
  for (const int stride : {5, 13, 27, 63}) {
    EXPECT_EQ(drain_hash(stride), golden) << "stride " << stride;
  }
}

}  // namespace
}  // namespace smilab
