// Structural tests for the library-level paper-table generation: headers,
// row sets, the "-" cells, and the qualitative content of the cells (the
// quantitative shape tests live in nas_test.cpp).
#include <gtest/gtest.h>

#include <cstdlib>

#include "smilab/core/paper_tables.h"

namespace smilab {
namespace {

NasRunOptions quick_options() {
  NasRunOptions options;
  options.trials = 2;
  return options;
}

TEST(PaperTablesTest, Table2ShapeAndContent) {
  const Table table =
      build_nas_table(NasBenchmark::kEP, {1, 2}, 1, quick_options());
  EXPECT_EQ(table.column_count(), 12u);
  EXPECT_EQ(table.row_count(), 6u);  // 3 classes x 2 node rows
  // Row 0: class A, 1 node, 1 rank; SMM0 ~ paper baseline 23.12.
  EXPECT_EQ(table.at(0, 0), "A");
  EXPECT_EQ(table.at(0, 1), "1");
  EXPECT_EQ(table.at(0, 2), "1");
  EXPECT_NEAR(std::atof(table.at(0, 3).c_str()), 23.12, 0.4);
  // The paper reference columns carry the published deltas.
  EXPECT_NEAR(std::atof(table.at(0, 11).c_str()), 10.99, 0.01);
}

TEST(PaperTablesTest, Table1SkipsNonSquareRankCounts) {
  // BT with 1 rank/node over node rows {1,2,4}: nodes=2 is not a square
  // rank count, so only 2 rows per class appear.
  const Table table =
      build_nas_table(NasBenchmark::kBT, {1, 2, 4}, 1, quick_options());
  EXPECT_EQ(table.row_count(), 6u);  // {1,4} x 3 classes
  EXPECT_EQ(table.at(1, 1), "4");
}

TEST(PaperTablesTest, Table3DashCellsMirrored) {
  const Table table =
      build_nas_table(NasBenchmark::kFT, {1, 2}, 1, quick_options());
  // Class C rows (indices 4, 5) are the paper's "-" cells.
  EXPECT_EQ(table.at(4, 0), "C");
  for (std::size_t col = 3; col < 12; ++col) {
    EXPECT_EQ(table.at(4, col), "-") << "col " << col;
    EXPECT_EQ(table.at(5, col), "-") << "col " << col;
  }
  // Class A rows are populated.
  EXPECT_NE(table.at(0, 3), "-");
}

TEST(PaperTablesTest, HttTableShape) {
  const Table table = build_htt_table(NasBenchmark::kEP, quick_options());
  EXPECT_EQ(table.column_count(), 14u);
  EXPECT_EQ(table.row_count(), 15u);  // 3 classes x 5 node rows
  // Paper reference column present for EP (Table 4 covers it).
  EXPECT_NE(table.at(0, 13), "-");
  EXPECT_NEAR(std::atof(table.at(0, 13).c_str()), 4.79, 0.02);
}

}  // namespace
}  // namespace smilab
