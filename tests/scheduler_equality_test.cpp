// Scheduler-equality suite: the ladder/calendar event queue (DESIGN.md
// §16) is a pure speed change. Everything observable — the PR-3 golden
// transport hashes, the smichk corpus pins (exact explored-schedule
// counts), and a 4096-rank streaming ring sweep — must be bit-identical
// under Engine::Scheduler::kLadder and kHeap, with transport rank-indexing
// on and off. A drift here is a correctness bug in the scheduler, not a
// perf tradeoff; do not re-pin without understanding why.
//
// Alongside the equality pins: FlatKeyMap (the open-addressed u64 map
// under the rank-indexed transport and the ladder slab) churned against a
// std::unordered_map reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "smilab/apps/nas/nas.h"
#include "smilab/mc/corpus.h"
#include "smilab/mc/explorer.h"
#include "smilab/mpi/collectives.h"
#include "smilab/mpi/job.h"
#include "smilab/mpi/streaming.h"
#include "smilab/sim/flat_key_map.h"
#include "smilab/sim/system.h"

namespace smilab {
namespace {

using Scheduler = Engine::Scheduler;

// FNV-1a over 64-bit words — the idiom of tests/transport_test.cpp, which
// owns the pinned constants reasserted below.
class TraceHash {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ull;
    }
  }
  void mix_signed(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

void mix_stats(TraceHash& h, const TaskStats& s) {
  h.mix_signed(s.end_time.ns());
  h.mix_signed(s.os_view_cpu_time.ns());
  h.mix_signed(s.true_cpu_time.ns());
  h.mix_signed(s.smm_stolen_time.ns());
  h.mix_signed(s.refill_overhead.ns());
  h.mix_signed(s.smm_hits);
  h.mix_signed(s.messages_sent);
  h.mix_signed(s.messages_received);
  h.mix_signed(s.bytes_sent);
  h.mix(s.finished ? 1 : 0);
  h.mix(s.failed ? 1 : 0);
}

void mix_system(TraceHash& h, const System& sys) {
  for (int t = 0; t < sys.task_count(); ++t) {
    mix_stats(h, sys.task_stats(TaskId{t}));
  }
  h.mix_signed(sys.inter_node_bytes());
  h.mix_signed(sys.messages_dropped());
  h.mix_signed(sys.messages_duplicated());
  h.mix_signed(sys.retransmissions());
  h.mix_signed(sys.transport_failures());
}

// --- PR-3 golden transport hashes under both schedulers ---------------------

// Pinned in tests/transport_test.cpp (seed build); re-declared here so the
// ladder must reproduce the SAME bytes the heap has been pinned to since
// PR-3 — not merely agree with whatever the heap produces today.
constexpr std::uint64_t kTable2SubGridHash = 2027882165916727799ull;
constexpr std::uint64_t kCollectiveMixHash = 17019758979342947237ull;

SystemConfig wyeast_cfg(int nodes, std::uint64_t seed) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = nodes;
  cfg.net = NetworkParams::wyeast();
  cfg.seed = seed;
  return cfg;
}

// The Table-2 (NAS EP) sub-grid golden program, parameterized by scheduler.
std::uint64_t table2_subgrid_hash(Scheduler sched) {
  TraceHash h;
  for (const bool long_smi : {false, true}) {
    for (const std::uint64_t seed : {1ull, 2ull}) {
      for (const int ranks_per_node : {1, 4}) {
        const NasJobSpec spec{NasBenchmark::kEP, NasClass::kA,
                              ranks_per_node == 1 ? 4 : 2, ranks_per_node};
        SystemConfig cfg = wyeast_cfg(spec.nodes, seed);
        cfg.smi = long_smi ? SmiConfig::long_every_second()
                           : SmiConfig::short_every_second();
        System sys{cfg};
        sys.engine().set_scheduler(sched);
        auto programs = build_nas_trace(spec, NasKnob{4096, 0});
        auto result =
            run_mpi_job(sys, std::move(programs),
                        block_placement(spec.ranks(), spec.ranks_per_node),
                        WorkloadProfile::dense_fp());
        h.mix_signed(result.elapsed.ns());
        mix_system(h, sys);
      }
    }
  }
  return h.value();
}

// The mixed blocking/nonblocking collective golden program (rendezvous
// payloads, isend/irecv/waitall, barrier), parameterized by scheduler.
std::uint64_t collective_mix_hash(Scheduler sched) {
  TraceHash h;
  for (const std::uint64_t seed : {3ull, 11ull}) {
    SystemConfig cfg = wyeast_cfg(8, seed);
    cfg.smi = SmiConfig::long_every_second();
    System sys{cfg};
    sys.engine().set_scheduler(sched);
    auto programs = make_rank_programs(8);
    TagAllocator tags;
    for (int iter = 0; iter < 6; ++iter) {
      for (auto& rp : programs) rp.compute(milliseconds(40));
      alltoall(programs, 96 * 1024, tags);
      alltoall_nonblocking(programs, 80 * 1024, tags);
      allreduce(programs, 1024, tags);
      barrier(programs, tags);
    }
    auto result = run_mpi_job(sys, std::move(programs), block_placement(8, 1),
                              WorkloadProfile::dense_fp());
    h.mix_signed(result.elapsed.ns());
    mix_system(h, sys);
  }
  return h.value();
}

TEST(SchedulerEqualityTest, Table2SubGridGoldenPinnedUnderBothSchedulers) {
  EXPECT_EQ(table2_subgrid_hash(Scheduler::kLadder), kTable2SubGridHash);
  EXPECT_EQ(table2_subgrid_hash(Scheduler::kHeap), kTable2SubGridHash);
}

TEST(SchedulerEqualityTest, CollectiveMixGoldenPinnedUnderBothSchedulers) {
  EXPECT_EQ(collective_mix_hash(Scheduler::kLadder), kCollectiveMixHash);
  EXPECT_EQ(collective_mix_hash(Scheduler::kHeap), kCollectiveMixHash);
}

// --- smichk corpus pins under the heap scheduler ----------------------------

// tests/mc_test.cpp pins the corpus under the default (ladder) scheduler.
// Re-exploring under kHeap must reproduce the EXACT same tree: schedule
// counts, pruned counts, verdicts, and the canonical observable hash. Any
// difference means the scheduler changed which choice points exist — a
// schedule-order drift, exactly what this suite exists to catch.
TEST(SchedulerEqualityTest, SmichkCorpusPinsIdenticalUnderHeapScheduler) {
  for (const mc::McCase& c : mc::corpus()) {
    SCOPED_TRACE(c.name);
    mc::ExplorerOptions opts;
    opts.max_schedules = mc::kCorpusMaxSchedules;
    opts.max_depth = mc::kCorpusMaxDepth;

    opts.scheduler = Scheduler::kLadder;
    mc::Explorer ladder{c.target, opts};
    const mc::ExplorationReport lrep = ladder.explore();

    opts.scheduler = Scheduler::kHeap;
    mc::Explorer heap{c.target, opts};
    const mc::ExplorationReport hrep = heap.explore();

    EXPECT_EQ(hrep.verdict, c.expect_verdict) << mc::to_string(hrep.verdict);
    EXPECT_EQ(hrep.schedules_run, c.expect_schedules);
    EXPECT_EQ(hrep.schedules_pruned, c.expect_pruned);
    EXPECT_TRUE(hrep.exhausted());
    EXPECT_EQ(hrep.canonical_hash, lrep.canonical_hash);
    EXPECT_EQ(hrep.schedules_run, lrep.schedules_run);
  }
}

// --- 4096-rank streaming ring under all four toggle combinations ------------

// The scale_projection ring halo-exchange at 4096 ranks — the shape the
// ladder and the rank-indexed transport were built for — run under
// {ladder, heap} x {rank-indexing on, off}. All four observable hashes
// must be identical: the hot-path rewrites compose without drift.
std::uint64_t ring_sweep_hash(Scheduler sched, bool rank_indexed) {
  constexpr int kRanks = 4096;
  constexpr int kIters = 5;
  constexpr int kRanksPerNode = 8;
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = (kRanks + kRanksPerNode - 1) / kRanksPerNode;
  cfg.net = NetworkParams::wyeast();
  cfg.smi = SmiConfig::none();
  cfg.seed = 42;
  System sys{cfg};
  sys.engine().set_scheduler(sched);
  sys.set_transport_rank_indexing(rank_indexed);
  auto sources = chunked_rank_sources(kRanks, [](int rank) {
    return [rank](int chunk, RankProgram& rp, TagAllocator& tags) {
      if (chunk >= kIters) return false;
      const int base = tags.allocate(2);
      const int next = (rank + 1) % kRanks;
      const int prev = (rank + kRanks - 1) % kRanks;
      rp.compute(microseconds(200));
      rp.sendrecv(next, 64 * 1024, base, prev, base);
      rp.sendrecv(prev, 64 * 1024, base + 1, next, base + 1);
      return true;
    };
  });
  std::vector<int> placement(kRanks);
  for (int r = 0; r < kRanks; ++r) placement[r] = r / kRanksPerNode;
  const MpiJobResult result = run_mpi_job_streaming(
      sys, kRanks, sources, placement, WorkloadProfile::dense_fp());
  sys.validate();
  TraceHash h;
  h.mix_signed(result.elapsed.ns());
  mix_system(h, sys);
  return h.value();
}

TEST(SchedulerEqualityTest, StreamingRing4096BitIdenticalAcrossToggles) {
  const std::uint64_t reference =
      ring_sweep_hash(Scheduler::kLadder, /*rank_indexed=*/true);
  EXPECT_EQ(ring_sweep_hash(Scheduler::kHeap, true), reference);
  EXPECT_EQ(ring_sweep_hash(Scheduler::kLadder, false), reference);
  EXPECT_EQ(ring_sweep_hash(Scheduler::kHeap, false), reference);
}

// --- Mid-run scheduler switch ------------------------------------------------

// set_scheduler is documented safe mid-run (kHeap flushes the ladder
// window; kLadder lets the heap drain through refills). Flipping back and
// forth while a program runs must not change the outcome.
TEST(SchedulerEqualityTest, MidRunSwitchPreservesOrder) {
  auto run = [](bool flip) {
    Engine eng;
    std::vector<int> order;
    for (int i = 0; i < 64; ++i) {
      eng.schedule_at(SimTime{100 + 7 * i}, [&order, i] { order.push_back(i); });
    }
    eng.schedule_at(SimTime{150}, [&] {
      if (flip) eng.set_scheduler(Scheduler::kHeap);
    });
    eng.schedule_at(SimTime{300}, [&] {
      if (flip) eng.set_scheduler(Scheduler::kLadder);
    });
    eng.run();
    return order;
  };
  EXPECT_EQ(run(true), run(false));
}

// --- FlatKeyMap vs unordered_map reference -----------------------------------

TEST(FlatKeyMapTest, ChurnMatchesUnorderedMapReference) {
  FlatKeyMap<int> map;
  std::unordered_map<std::uint64_t, int> ref;
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  auto snapshot = [](auto&& for_each_fn) {
    std::vector<std::pair<std::uint64_t, int>> v;
    for_each_fn(v);
    std::sort(v.begin(), v.end());
    return v;
  };
  for (int round = 0; round < 20000; ++round) {
    const std::uint64_t key = next() % 512;  // small space: heavy collisions
    switch (next() % 4) {
      case 0:
      case 1: {  // insert / overwrite
        const int val = static_cast<int>(next() & 0xffff);
        map.get_or_insert(key) = val;
        ref[key] = val;
        break;
      }
      case 2: {  // erase (often absent: backward-shift on misses too)
        map.erase(key);
        ref.erase(key);
        break;
      }
      case 3: {  // lookup
        const int* got = map.find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(got != nullptr, it != ref.end());
        if (got != nullptr) {
          ASSERT_EQ(*got, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(map.size(), ref.size());
  }
  const auto got = snapshot([&](auto& v) {
    map.for_each([&v](std::uint64_t k, const int& val) { v.emplace_back(k, val); });
  });
  const auto want = snapshot([&](auto& v) {
    for (const auto& [k, val] : ref) v.emplace_back(k, val);
  });
  EXPECT_EQ(got, want);
}

TEST(FlatKeyMapTest, SurvivesGrowthFromMinCapacity) {
  FlatKeyMap<std::uint64_t> map;
  for (std::uint64_t k = 0; k < 1000; ++k) map.get_or_insert(k * 0x10001) = k;
  EXPECT_EQ(map.size(), 1000u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const std::uint64_t* v = map.find(k * 0x10001);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, k);
  }
  for (std::uint64_t k = 0; k < 1000; k += 2) map.erase(k * 0x10001);
  EXPECT_EQ(map.size(), 500u);
  for (std::uint64_t k = 1; k < 1000; k += 2) {
    ASSERT_NE(map.find(k * 0x10001), nullptr);
  }
}

}  // namespace
}  // namespace smilab
