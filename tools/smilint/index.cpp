// smilint phase 1: lexer and symbol index (see index.h).
#include "index.h"

#include <algorithm>
#include <cctype>

namespace smilint {

bool ident_start_char(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

void trim(std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) {
    s.clear();
    return;
  }
  const auto e = s.find_last_not_of(" \t\r\n");
  s = s.substr(b, e - b + 1);
}

/// Parse `smilint: allow(<rule>[,<rule>]) reason=<text>` out of a comment.
/// Malformed rule lists are reported as a reason-less suppression so they
/// surface as S0 findings instead of being silently ignored.
void parse_suppression(std::string_view comment, int line,
                       std::vector<SuppressionDirective>& out) {
  const auto at = comment.find("smilint:");
  if (at == std::string_view::npos) return;
  std::string_view rest = comment.substr(at + 8);
  SuppressionDirective s;
  s.line = line;
  const auto open = rest.find("allow(");
  if (open == std::string_view::npos) return;
  const auto close = rest.find(')', open);
  if (close == std::string_view::npos) {
    out.push_back(std::move(s));  // malformed: no rule list
    return;
  }
  std::string_view list = rest.substr(open + 6, close - open - 6);
  while (!list.empty()) {
    const auto comma = list.find(',');
    std::string one{list.substr(0, comma)};
    trim(one);
    Rule rule;
    if (!one.empty() && parse_rule_id(one, rule)) s.rules.push_back(rule);
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
  std::string_view after = rest.substr(close + 1);
  const auto r = after.find("reason=");
  if (r != std::string_view::npos) {
    std::string reason{after.substr(r + 7)};
    trim(reason);
    if (!reason.empty()) {
      s.reason = std::move(reason);
      s.has_reason = true;
    }
  }
  out.push_back(std::move(s));
}

/// Parse `guarded_by(<target>)` out of a comment (C1 field annotation).
void parse_guard(std::string_view comment, int line,
                 std::vector<GuardAnnotation>& out) {
  const auto at = comment.find("guarded_by(");
  if (at == std::string_view::npos) return;
  const auto close = comment.find(')', at);
  if (close == std::string_view::npos) return;
  std::string target{comment.substr(at + 11, close - at - 11)};
  trim(target);
  if (target.empty()) return;
  out.push_back({line, std::move(target)});
}

/// Harvest the target of an #include directive line (quotes or angles).
void parse_include(std::string_view directive, std::vector<std::string>& out) {
  const auto inc = directive.find("include");
  if (inc == std::string_view::npos) return;
  std::string_view rest = directive.substr(inc + 7);
  const auto open = rest.find_first_of("\"<");
  if (open == std::string_view::npos) return;
  const char closer = rest[open] == '<' ? '>' : '"';
  const auto close = rest.find(closer, open + 1);
  if (close == std::string_view::npos) return;
  out.emplace_back(rest.substr(open + 1, close - open - 1));
}

}  // namespace

Lexed lex(std::string_view text) {
  Lexed out;
  // Raw source lines for snippets.
  {
    std::size_t start = 0;
    while (start <= text.size()) {
      auto nl = text.find('\n', start);
      if (nl == std::string_view::npos) nl = text.size();
      std::string line{text.substr(start, nl - start)};
      if (!line.empty() && line.back() == '\r') line.pop_back();
      out.lines.push_back(std::move(line));
      if (nl == text.size()) break;
      start = nl + 1;
    }
  }

  std::string code;  // code-only text, literals blanked, one pass
  code.reserve(text.size());
  struct Pos {
    int line;
    int col;
  };
  std::vector<Pos> code_pos;  // source position per code byte
  code_pos.reserve(text.size());
  int line = 1;
  int col = 1;

  std::size_t i = 0;
  const std::size_t n = text.size();
  auto peek = [&](std::size_t k) -> char { return k < n ? text[k] : '\0'; };
  auto advance = [&](std::size_t k) {
    // Move i to k, updating line/col across the skipped span.
    for (; i < k && i < n; ++i) {
      if (text[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };

  bool at_line_start = true;  // only whitespace seen so far on this line
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      code.push_back('\n');
      code_pos.push_back({line, col});
      advance(i + 1);
      continue;
    }
    if (at_line_start && c == '#') {
      // Preprocessor directive: harvest #include, then drop it (with
      // backslash continuations).
      const std::size_t dstart = i;
      std::size_t j = i;
      while (j < n) {
        if (text[j] == '\\' && j + 1 < n && text[j + 1] == '\n') {
          j += 2;
          continue;
        }
        if (text[j] == '\n') break;
        ++j;
      }
      parse_include(text.substr(dstart, j - dstart), out.includes);
      advance(j);
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) at_line_start = false;
    if (c == '/' && peek(i + 1) == '/') {
      std::size_t j = i + 2;
      while (j < n && text[j] != '\n') ++j;
      const std::string_view comment = text.substr(i + 2, j - i - 2);
      parse_suppression(comment, line, out.suppressions);
      parse_guard(comment, line, out.guards);
      advance(j);
      continue;
    }
    if (c == '/' && peek(i + 1) == '*') {
      std::size_t j = i + 2;
      while (j < n && !(text[j] == '*' && peek(j + 1) == '/')) ++j;
      // The directive anchors to the line the comment ENDS on.
      const std::size_t stop = j < n ? j + 2 : n;
      const std::size_t begin = i;
      advance(stop);
      const std::string_view comment =
          text.substr(begin + 2, (stop >= begin + 4 ? stop - begin - 4 : 0));
      parse_suppression(comment, line, out.suppressions);
      parse_guard(comment, line, out.guards);
      continue;
    }
    if (c == 'R' && peek(i + 1) == '"') {
      // Raw string literal R"delim(...)delim".
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(') delim.push_back(text[j++]);
      const std::string closer = ")" + delim + "\"";
      const auto end = text.find(closer, j);
      const std::size_t stop =
          end == std::string_view::npos ? n : end + closer.size();
      advance(stop);
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\') ++j;
        if (j < n) ++j;
      }
      advance(j < n ? j + 1 : n);
      continue;
    }
    code.push_back(c);
    code_pos.push_back({line, col});
    advance(i + 1);
  }

  // Tokenize the code-only text.
  std::size_t p = 0;
  const std::size_t m = code.size();
  while (p < m) {
    const char c = code[p];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++p;
      continue;
    }
    const Pos pos = code_pos[p];
    if (ident_start_char(c)) {
      std::size_t q = p;
      while (q < m && ident_char(code[q])) ++q;
      out.tokens.push_back({code.substr(p, q - p), pos.line, pos.col});
      p = q;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t q = p;
      while (q < m && (ident_char(code[q]) || code[q] == '.' ||
                       code[q] == '\'')) {
        ++q;
      }
      p = q;  // numbers never participate in a rule pattern
      continue;
    }
    // Multi-char operators the matchers care about; everything else is a
    // single-char symbol token.
    auto two = [&](char a, char b) {
      return c == a && p + 1 < m && code[p + 1] == b;
    };
    if (two(':', ':') || two('+', '=') || two('-', '=') || two('*', '=') ||
        two('/', '=') || two('-', '>')) {
      out.tokens.push_back({code.substr(p, 2), pos.line, pos.col});
      p += 2;
      continue;
    }
    out.tokens.push_back({std::string(1, c), pos.line, pos.col});
    ++p;
  }
  return out;
}

std::size_t skip_angle_block(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  while (i < toks.size()) {
    const std::string& t = toks[i].text;
    if (t == "<") ++depth;
    if (t == ">" && --depth == 0) return i + 1;
    ++i;
  }
  return i;
}

// --- Symbol indexing ---------------------------------------------------------

namespace {

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kWords = {
      "if",     "for",    "while",  "switch",   "catch",  "return",
      "do",     "else",   "sizeof", "alignof",  "case",   "new",
      "delete", "throw",  "static_assert",      "decltype",
      "alignas", "noexcept",
  };
  return kWords;
}

/// Find the matching close brace for tokens[open] == "{".
std::size_t match_brace(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t k = open; k < toks.size(); ++k) {
    if (toks[k].text == "{") ++depth;
    if (toks[k].text == "}" && --depth == 0) return k;
  }
  return toks.size();
}

/// Find the matching close paren for tokens[open] == "(".
std::size_t match_paren(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t k = open; k < toks.size(); ++k) {
    if (toks[k].text == "(") ++depth;
    if (toks[k].text == ")" && --depth == 0) return k;
  }
  return toks.size();
}

/// After a parameter list's ")", decide whether a function BODY follows.
/// Consumes trailing const/noexcept/override/final/mutable, `-> type`, and
/// constructor member-init lists. Returns the index of the body's "{", or
/// 0 when this is not a definition.
std::size_t find_body_brace(const std::vector<Token>& toks,
                            std::size_t after_params) {
  std::size_t k = after_params;
  const std::size_t n = toks.size();
  auto tok = [&](std::size_t a) -> const std::string& {
    static const std::string empty;
    return a < n ? toks[a].text : empty;
  };
  while (k < n) {
    const std::string& t = tok(k);
    if (t == "const" || t == "override" || t == "final" || t == "mutable" ||
        t == "&" || t == "&&") {
      ++k;
      continue;
    }
    if (t == "noexcept") {
      ++k;
      if (tok(k) == "(") k = match_paren(toks, k) + 1;
      continue;
    }
    if (t == "->") {
      // Trailing return type: consume type tokens (idents, ::, <...>, *, &)
      ++k;
      while (k < n) {
        const std::string& r = tok(k);
        if (r == "<") {
          k = skip_angle_block(toks, k);
          continue;
        }
        if (r == "{" || r == ";") break;
        if (ident_start_char(r[0]) || r == "::" || r == "*" || r == "&") {
          ++k;
          continue;
        }
        return 0;  // unexpected token: not a definition we understand
      }
      continue;
    }
    if (t == ":") {
      // Constructor member-init list: ident ( ... ) or ident { ... },
      // comma-separated, then the body "{".
      ++k;
      while (k < n) {
        if (!ident_start_char(tok(k)[0])) return 0;
        ++k;
        if (tok(k) == "<") k = skip_angle_block(toks, k);
        if (tok(k) == "(") {
          k = match_paren(toks, k) + 1;
        } else if (tok(k) == "{") {
          k = match_brace(toks, k) + 1;
        } else {
          return 0;
        }
        if (tok(k) == ",") {
          ++k;
          continue;
        }
        break;
      }
      continue;
    }
    if (t == "{") return k;
    return 0;  // ";" (declaration) or anything else
  }
  return 0;
}

/// Token kinds that end consideration of `name (` as a function definition
/// head: the identifier is a call/declarator inside an expression if the
/// preceding token is one of these.
bool expression_context(const std::string& prev) {
  if (prev.empty()) return false;
  // After an operator or "=", `name(...)` is a call or a cast.
  static const std::set<std::string> kOps = {
      "=",  "+",  "-", "*", "/", "%", "<", ">",  "!", "?", ":", ",",
      "(",  "[",  "&", "|", "^", ".", "->", "+=", "-=", "*=", "/=",
      "return", "co_return", "throw", "case",
  };
  return kOps.count(prev) > 0;
}

void harvest_functions_and_calls(FileIndex& fi) {
  const std::vector<Token>& toks = fi.lexed.tokens;
  const std::size_t n = toks.size();
  auto tok = [&](std::size_t a) -> const std::string& {
    static const std::string empty;
    return a < n ? toks[a].text : empty;
  };

  // Pass 1: function definitions.
  for (std::size_t i = 0; i < n; ++i) {
    if (!ident_start_char(tok(i)[0])) continue;
    if (control_keywords().count(tok(i)) > 0) continue;
    if (tok(i) == "operator") continue;  // operator overloads: skip
    // Qualified chain: A :: B :: name — walk to the last component.
    std::size_t name_at = i;
    std::string qualified = tok(i);
    std::size_t j = i + 1;
    if (tok(j) == "<") {
      // Possible template-id before ::, e.g. Foo<T>::bar — or a plain
      // comparison; skip_angle_block is bounded either way.
      const std::size_t after = skip_angle_block(toks, j);
      if (tok(after) == "::") j = after;
    }
    while (tok(j) == "::" && j + 1 < n && ident_start_char(tok(j + 1)[0]) &&
           control_keywords().count(tok(j + 1)) == 0 &&
           tok(j + 1) != "operator") {
      qualified += "::" + tok(j + 1);
      name_at = j + 1;
      j += 2;
      if (tok(j) == "<") {
        const std::size_t after = skip_angle_block(toks, j);
        if (tok(after) == "::") j = after;
      }
    }
    if (tok(j) != "(") continue;
    // The token before the head decides expression vs declaration context.
    const std::string& prev = i > 0 ? toks[i - 1].text : tok(n);
    if (expression_context(prev)) continue;
    const std::size_t close = match_paren(toks, j);
    if (close >= n) continue;
    const std::size_t body = find_body_brace(toks, close + 1);
    if (body == 0) continue;
    FunctionDef def;
    def.name = tok(name_at);
    def.qualified = qualified;
    def.line = toks[name_at].line;
    def.col = toks[name_at].col;
    def.body_begin = body;
    def.body_end = match_brace(toks, body);
    fi.functions.push_back(std::move(def));
    // Do NOT skip ahead: member functions defined inside a class body are
    // found by the same scan because their heads are ordinary tokens.
  }
  std::sort(fi.functions.begin(), fi.functions.end(),
            [](const FunctionDef& a, const FunctionDef& b) {
              return a.body_begin < b.body_begin;
            });

  // Pass 2: call sites (identifier followed by "(", not a keyword, not a
  // definition head). Attributed to the innermost enclosing function body.
  auto enclosing = [&](std::size_t t) -> int {
    int best = -1;
    for (std::size_t f = 0; f < fi.functions.size(); ++f) {
      const FunctionDef& d = fi.functions[f];
      if (d.body_begin < t && t < d.body_end) best = static_cast<int>(f);
      if (d.body_begin >= t) break;
    }
    return best;
  };
  std::set<std::size_t> def_heads;
  for (const FunctionDef& d : fi.functions) {
    // Re-locate each definition's name token index by position.
    // (Cheap linear scan avoided: store via matching line/col.)
    (void)d;
  }
  // Mark definition head token indices by re-scanning: a head is the name
  // token whose match produced a recorded body_begin.
  for (const FunctionDef& d : fi.functions) {
    for (std::size_t t = 0; t < n; ++t) {
      if (toks[t].line == d.line && toks[t].col == d.col) {
        def_heads.insert(t);
        break;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!ident_start_char(tok(i)[0])) continue;
    if (tok(i + 1) != "(") continue;
    if (control_keywords().count(tok(i)) > 0) continue;
    if (tok(i) == "operator") continue;
    if (def_heads.count(i) > 0) continue;
    CallSite call;
    call.callee = tok(i);
    call.line = toks[i].line;
    call.col = toks[i].col;
    call.token = i;
    call.caller = enclosing(i);
    const std::string& prev = i > 0 ? toks[i - 1].text : tok(n);
    call.member_call = prev == "." || prev == "->";
    fi.calls.push_back(std::move(call));
  }
}

const std::set<std::string>& mutex_types() {
  static const std::set<std::string> kTypes = {
      "mutex", "timed_mutex", "recursive_mutex", "recursive_timed_mutex",
      "shared_mutex", "shared_timed_mutex",
  };
  return kTypes;
}

/// Classify and record one field declaration statement (tokens between
/// statement boundaries at class-body depth 1, braces elided).
void record_field(const std::vector<Token>& stmt, ClassInfo& cls) {
  if (stmt.empty()) return;
  const std::string& head = stmt.front().text;
  static const std::set<std::string> kNonField = {
      "using",  "typedef", "friend", "static", "template", "struct",
      "class",  "enum",    "union",  "public", "private",  "protected",
      "explicit",
  };
  if (kNonField.count(head) > 0) return;
  // A top-level "(" (outside <...>) means a function declaration.
  int angle = 0;
  for (const Token& t : stmt) {
    if (t.text == "<") ++angle;
    if (t.text == ">" && angle > 0) --angle;
    if (t.text == "(" && angle == 0) return;
    if (t.text == "operator") return;
  }
  // Truncate at "=" (default member initializer) at angle depth 0.
  std::size_t end = stmt.size();
  angle = 0;
  for (std::size_t k = 0; k < stmt.size(); ++k) {
    if (stmt[k].text == "<") ++angle;
    if (stmt[k].text == ">" && angle > 0) --angle;
    if (stmt[k].text == "=" && angle == 0) {
      end = k;
      break;
    }
  }
  // Strip trailing array extents [N].
  while (end > 0 && (stmt[end - 1].text == "]" || stmt[end - 1].text == "[")) {
    --end;
  }
  if (end == 0) return;
  // The declarator name is the trailing identifier.
  const Token& name_tok = stmt[end - 1];
  if (!ident_start_char(name_tok.text[0])) return;
  static const std::set<std::string> kNotNames = {
      "const", "mutable", "volatile", "int",  "long", "short", "char",
      "bool",  "double",  "float",    "void", "auto", "unsigned", "signed",
  };
  if (kNotNames.count(name_tok.text) > 0) return;
  if (end >= 2 && stmt[end - 2].text == "::") return;  // qualified: not a name

  FieldDecl field;
  field.name = name_tok.text;
  field.line = name_tok.line;
  field.col = name_tok.col;
  angle = 0;
  for (std::size_t k = 0; k + 1 < end; ++k) {
    const std::string& t = stmt[k].text;
    if (t == "<") ++angle;
    if (t == ">" && angle > 0) --angle;
    if (angle > 0) continue;  // template arguments don't classify the field
    if (mutex_types().count(t) > 0) field.is_mutex = true;
    if (t == "condition_variable" || t == "condition_variable_any") {
      field.is_cv = true;
    }
    if (t == "atomic" || t == "atomic_flag") field.is_atomic = true;
    if (t == "const" || t == "constexpr") field.is_const = true;
  }
  if (end >= 2 && (stmt[end - 2].text == "&" || stmt[end - 2].text == "&&")) {
    field.is_reference = true;
  }
  if (field.is_mutex) cls.has_mutex = true;
  cls.fields.push_back(std::move(field));
}

void harvest_classes(FileIndex& fi) {
  const std::vector<Token>& toks = fi.lexed.tokens;
  const std::size_t n = toks.size();
  auto tok = [&](std::size_t a) -> const std::string& {
    static const std::string empty;
    return a < n ? toks[a].text : empty;
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (tok(i) != "class" && tok(i) != "struct") continue;
    if (i > 0 && (toks[i - 1].text == "enum" || toks[i - 1].text == "<" ||
                  toks[i - 1].text == ",")) {
      continue;  // enum class / template parameter
    }
    // Name (possibly qualified: struct SweepService::Impl { ... }).
    std::size_t j = i + 1;
    if (!ident_start_char(tok(j)[0])) continue;  // anonymous
    std::string name = tok(j);
    int line = toks[j].line;
    ++j;
    while (tok(j) == "::" && ident_start_char(tok(j + 1)[0])) {
      name = tok(j + 1);
      line = toks[j + 1].line;
      j += 2;
    }
    if (tok(j) == "<") j = skip_angle_block(toks, j);  // specialization
    if (tok(j) == "final") ++j;
    if (tok(j) == ":") {
      // Base clause: consume until the body "{".
      while (j < n && tok(j) != "{" && tok(j) != ";") {
        if (tok(j) == "<") {
          j = skip_angle_block(toks, j);
          continue;
        }
        ++j;
      }
    }
    if (tok(j) != "{") continue;  // forward declaration or not a class
    ClassInfo cls;
    cls.name = std::move(name);
    cls.line = line;
    cls.body_begin = j;
    cls.body_end = match_brace(toks, j);

    // Field statements at depth 1 of the class body.
    std::vector<Token> stmt;
    std::size_t k = j + 1;
    while (k < cls.body_end) {
      const std::string& t = tok(k);
      if (t == "{") {
        // Nested braces: member function body, nested class body, or a
        // brace initializer. Skip balanced; if a ";" follows it was part
        // of a declaration statement (brace-init or nested class) —
        // nested classes are harvested by their own "class/struct" scan
        // and filtered by record_field's head check.
        const std::size_t close = match_brace(toks, k);
        k = close + 1;
        if (tok(k) == ";") {
          stmt.push_back({";", 0, 0});  // force statement end below
          continue;
        }
        stmt.clear();  // function body: whole statement was its head
        continue;
      }
      if (t == ";") {
        record_field(stmt, cls);
        stmt.clear();
        ++k;
        continue;
      }
      if (t == ":" && !stmt.empty() &&
          (stmt.back().text == "public" || stmt.back().text == "private" ||
           stmt.back().text == "protected")) {
        stmt.clear();  // access specifier
        ++k;
        continue;
      }
      stmt.push_back(toks[k]);
      ++k;
    }

    // Attach guarded_by annotations. Each annotation binds to exactly one
    // field: the one declared on its own line if any, else the one on the
    // next line (standalone-comment form). Same-line-first keeps an
    // inline annotation from bleeding onto the following declaration.
    for (const GuardAnnotation& g : fi.lexed.guards) {
      FieldDecl* target = nullptr;
      for (FieldDecl& f : cls.fields) {
        if (f.line == g.line) {
          target = &f;
          break;
        }
      }
      if (target == nullptr) {
        for (FieldDecl& f : cls.fields) {
          if (f.line == g.line + 1) {
            target = &f;
            break;
          }
        }
      }
      if (target != nullptr && !target->has_guard) {
        target->has_guard = true;
        target->guard = g.target;
      }
    }
    fi.classes.push_back(std::move(cls));
  }
}

}  // namespace

FileIndex index_file(const std::string& path, std::string_view text) {
  FileIndex fi;
  fi.path = path;
  fi.lexed = lex(text);
  harvest_functions_and_calls(fi);
  harvest_classes(fi);
  return fi;
}

void SourceIndex::link() {
  functions_by_name.clear();
  for (std::size_t f = 0; f < files.size(); ++f) {
    for (std::size_t d = 0; d < files[f].functions.size(); ++d) {
      functions_by_name[files[f].functions[d].name].emplace_back(
          static_cast<int>(f), static_cast<int>(d));
    }
  }
}

const FileIndex* SourceIndex::find(std::string_view path) const {
  for (const FileIndex& fi : files) {
    if (fi.path == path) return &fi;
  }
  return nullptr;
}

}  // namespace smilint
