// smilint CLI: scan the tree, print findings, gate on unsuppressed count.
//
//   smilint [--root DIR] [--rules FILE] [--json] [--sarif FILE]
//           [--baseline FILE] [--write-baseline] [--show-suppressed]
//           [PATH...]
//
// PATHs are repo-relative files or directories; the default scan set is
// src, bench, and tools. The baseline ratchet
// (tools/smilint/smilint.baseline by default) marks known findings so the
// gate only fails on NEW ones; --write-baseline regenerates it from the
// current scan. Exit codes: 0 clean, 1 unsuppressed violations, 2 usage
// or I/O error.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "smilint.h"

int main(int argc, char** argv) {
  std::string root = ".";
  std::string rules_path;
  std::string sarif_path;
  std::string baseline_path;
  bool json = false;
  bool write_baseline = false;
  bool show_suppressed = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "smilint: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = value("--root");
    } else if (arg == "--rules") {
      rules_path = value("--rules");
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      sarif_path = value("--sarif");
    } else if (arg == "--baseline") {
      baseline_path = value("--baseline");
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--show-suppressed") {
      show_suppressed = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: smilint [--root DIR] [--rules FILE] [--json] "
                   "[--sarif FILE] [--baseline FILE] [--write-baseline] "
                   "[--show-suppressed] [PATH...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "smilint: unknown flag " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "bench", "tools"};
  if (rules_path.empty()) {
    rules_path =
        (std::filesystem::path(root) / "tools/smilint/smilint.rules").string();
  }
  if (baseline_path.empty()) {
    baseline_path =
        (std::filesystem::path(root) / "tools/smilint/smilint.baseline")
            .string();
  }

  try {
    const smilint::Manifest manifest = smilint::Manifest::load(rules_path);
    smilint::Report report = smilint::run_tree(root, paths, manifest);

    if (write_baseline) {
      std::ofstream out{baseline_path};
      if (!out) {
        std::cerr << "smilint: cannot write " << baseline_path << "\n";
        return 2;
      }
      out << smilint::Baseline::render(report);
      std::cerr << "smilint: wrote baseline to " << baseline_path << "\n";
      return 0;
    }

    smilint::Baseline baseline = smilint::Baseline::load(baseline_path);
    baseline.apply(report);
    for (const std::string& stale : baseline.unmatched()) {
      std::cerr << "smilint: stale baseline entry (fixed or moved?): "
                << stale << "\n";
    }

    if (!sarif_path.empty()) {
      std::ofstream out{sarif_path};
      if (!out) {
        std::cerr << "smilint: cannot write " << sarif_path << "\n";
        return 2;
      }
      out << smilint::to_sarif(report);
    }
    if (json) {
      std::cout << smilint::to_json(report);
    } else {
      smilint::print_text(std::cout, report, show_suppressed);
    }
    return report.unsuppressed_count() > 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "smilint: " << e.what() << "\n";
    return 2;
  }
}
