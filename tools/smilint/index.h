// smilint phase 1: lexing and per-TU symbol indexing.
//
// The v1 analyzer was a single-file token matcher; the cross-file rules
// (D7 nondeterminism taint, C1 guarded-by) need to know *what* a file
// declares, not just which tokens it contains. This header is the shared
// vocabulary between the two phases:
//
//   phase 1 (index.cpp)        lex every scanned TU and harvest function
//                              definitions (with token-range bodies), call
//                              sites (attributed to their enclosing
//                              function), class/struct members (with
//                              guarded_by annotations and mutex/atomic/
//                              const classification), and the include
//                              list — the symbol index.
//   phase 2 (rules_local.cpp,  run the per-file rules over each TU's
//            rules_xfile.cpp)  tokens, then the cross-file rules over the
//                              whole index (taint propagation walks the
//                              call graph; guarded-by resolves fields
//                              declared in included headers).
//
// Everything here is deliberately lexical: no libclang, no type
// resolution. The indexing heuristics are tuned to this repository's
// idiom (and self-checked by tests/smilint_test.cpp); where resolution is
// ambiguous the rules fail open and say so (taint-unknown).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "smilint.h"

namespace smilint {

struct Token {
  std::string text;
  int line = 0;
  int col = 0;  ///< 1-based byte column of the token's first character
};

/// A suppression directive parsed from a comment:
///   smilint: allow(<rule>[,<rule>]) reason=<text>
struct SuppressionDirective {
  int line = 0;  ///< line the comment ends on
  std::vector<Rule> rules;
  std::string reason;
  bool has_reason = false;
};

/// A `guarded_by(<target>)` field annotation parsed from a comment. The
/// target is a mutex member name, or the special tokens `internal`
/// (internally synchronized object) / `init` (written only before
/// concurrency starts).
struct GuardAnnotation {
  int line = 0;
  std::string target;
};

struct Lexed {
  std::vector<Token> tokens;
  std::vector<SuppressionDirective> suppressions;
  std::vector<GuardAnnotation> guards;
  std::vector<std::string> includes;  ///< #include targets, as written
  std::vector<std::string> lines;     ///< raw source lines (for snippets)
};

/// Strip comments / string literals / preprocessor lines and tokenize.
/// Comments are scanned for suppression and guarded_by directives;
/// #include lines are harvested before being dropped.
[[nodiscard]] Lexed lex(std::string_view text);

[[nodiscard]] bool ident_start_char(char c);

/// Skip a balanced <...> starting at tokens[i] == "<"; returns the index
/// one past the closing ">".
[[nodiscard]] std::size_t skip_angle_block(const std::vector<Token>& toks,
                                           std::size_t i);

// --- Phase-1 symbol index ----------------------------------------------------

struct FunctionDef {
  std::string name;       ///< unqualified name ("serve_line")
  std::string qualified;  ///< as written ("SweepService::serve_line")
  int line = 0;
  int col = 0;
  std::size_t body_begin = 0;  ///< token index of the body's "{"
  std::size_t body_end = 0;    ///< token index of the matching "}"
};

struct CallSite {
  std::string callee;  ///< unqualified callee name
  int line = 0;
  int col = 0;
  std::size_t token = 0;    ///< token index of the callee identifier
  int caller = -1;          ///< index into FileIndex::functions, -1 if none
  bool member_call = false; ///< preceded by "." or "->"
};

/// One data member of a class/struct.
struct FieldDecl {
  std::string name;
  int line = 0;
  int col = 0;
  bool is_mutex = false;      ///< std::mutex / shared_mutex / recursive_*
  bool is_cv = false;         ///< condition_variable[_any]
  bool is_atomic = false;     ///< std::atomic<...>
  bool is_const = false;
  bool is_reference = false;
  bool has_guard = false;     ///< carries a guarded_by(...) annotation
  std::string guard;          ///< annotation target when has_guard
};

struct ClassInfo {
  std::string name;  ///< unqualified ("Impl", "Shard")
  int line = 0;
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  std::vector<FieldDecl> fields;
  bool has_mutex = false;
};

/// Everything phase 1 knows about one translation unit.
struct FileIndex {
  std::string path;  ///< repo-relative, forward slashes
  Lexed lexed;
  std::vector<FunctionDef> functions;
  std::vector<CallSite> calls;
  std::vector<ClassInfo> classes;
};

/// Index one TU. `path` is stored verbatim.
[[nodiscard]] FileIndex index_file(const std::string& path,
                                   std::string_view text);

/// The whole scanned tree, phase-1 complete.
struct SourceIndex {
  std::vector<FileIndex> files;  ///< sorted by path (run_tree's scan order)
  /// Unqualified function name -> (file index, function index) for every
  /// definition of that name anywhere in the scan. Multiple entries mean
  /// the name is ambiguous; taint propagation unions over them.
  std::map<std::string, std::vector<std::pair<int, int>>> functions_by_name;

  void link();  ///< (re)build functions_by_name from files
  [[nodiscard]] const FileIndex* find(std::string_view path) const;
};

}  // namespace smilint
