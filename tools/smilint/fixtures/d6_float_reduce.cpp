// Fixture: accumulation-order-sensitive floating-point reductions.
// Expected: D3 + D6 on the unordered loop (lines 10, 11), D6 on the
// std::reduce call (line 15).
#include <numeric>
#include <unordered_map>

double fixture_reduce(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  long count = 0;
  for (const auto& [id, w] : weights) {  // D3
    total += w;                          // D6: sum depends on hash order
    count += 1;                          // integer: exact, no finding
  }
  const double vals[3] = {0.1, 0.2, 0.3};
  total += std::reduce(vals, vals + 3);  // D6
  return total + static_cast<double>(count);
}
