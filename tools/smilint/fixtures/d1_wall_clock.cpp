// Fixture: every way simulation code reaches for the wall clock.
// Expected: D1 on lines 8, 10, 12; the comment mention below is inert.
#include <chrono>
#include <ctime>
#include <sys/time.h>

double fixture_wall_clock() {
  const auto t0 = std::chrono::steady_clock::now();  // D1
  timeval tv{};
  gettimeofday(&tv, nullptr);  // D1
  // std::chrono in a comment must not fire.
  const auto stamp = time(nullptr);  // D1
  return static_cast<double>(stamp) + t0.time_since_epoch().count() +
         static_cast<double>(tv.tv_sec);
}
