// Fixture: unseeded / ambient randomness sources.
// Expected: D2 on lines 7, 9, 10; the string literal below is inert.
#include <cstdlib>
#include <random>

int fixture_rng() {
  const int a = rand();  // D2
  const char* label = "rand() in a string must not fire";
  std::random_device dev;                  // D2
  std::mt19937 gen{dev()};                 // D2
  return a + static_cast<int>(gen()) + static_cast<int>(label[0]);
}
