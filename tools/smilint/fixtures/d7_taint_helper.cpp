// Fixture: D7 taint SOURCE TU of the cross-file pair. The pointer->integer
// cast seeds taint on fixture_node_token, but a seed alone is not a
// finding — d7_taint_use.cpp reports where the taint lands.
// Expected: no findings in this file.
#include <cstdint>

std::uint64_t fixture_node_token(const int* node) {
  // The address is fresh every run: anything derived from it is
  // nondeterministic. This is the seed.
  return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(node));
}
