// Fixture: iteration over an unordered container declared in the paired
// header. Expected: D3 on lines 8 and 16; the keyed find() is inert.
#include "d3_unordered_iter.h"

long FixtureTable::walk() const {
  long sum = 0;
  for (const auto& [key, value] : rows_) {  // D3
    sum += key + static_cast<long>(value.size());
  }
  const auto hit = rows_.find(42);  // keyed lookup: fine
  return sum + (hit != rows_.end() ? 1 : 0);
}

long FixtureTable::walk_iter() const {
  long sum = 0;
  for (auto it = rows_.begin(); it != rows_.end(); ++it) {  // D3
    sum += it->first;
  }
  return sum;
}
