// Fixture: std::function in a file the manifest marks hot-path.
// Expected: D4 on line 6 (the fixture manifest hot-paths this directory).
#include <functional>

struct FixtureCallback {
  std::function<void(int)> on_event;  // D4
};
