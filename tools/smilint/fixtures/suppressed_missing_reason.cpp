// Fixture: a suppression without a reason does NOT suppress, and is itself
// an S0 finding. Expected: D2 unsuppressed on line 6, S0 on line 5.
#include <cstdlib>

// smilint: allow(unseeded-rng)
int fixture_no_reason() { return rand(); }
