// Fixture: raw allocation outside the slab allocators.
// Expected: D5 on lines 7 and 9; `= delete` and `operator new` are inert.
struct FixtureBox {
  FixtureBox(const FixtureBox&) = delete;  // deleted function: fine

  static int* make() {
    int* p = new int[16];  // D5
    p[0] = 1;
    delete[] p;  // D5
    return nullptr;
  }
};
