// Fixture: D7 taint SINK TU of the cross-file pair. fixture_node_token is
// defined in d7_taint_helper.cpp and tainted there by a pointer->integer
// cast; this hot-path TU calls it and feeds the result to a golden-hash
// sink. Neither line mentions a pointer — only the cross-file index sees
// the problem.
// Expected: D7 on line 23 (hot-path call to a tainted function) and D7 on
// line 24 (sink `mix` receives the tainted local).
#include <cstdint>

std::uint64_t fixture_node_token(const int* node);

struct FixtureHash {
  std::uint64_t state = 1469598103934665603ull;
  std::uint64_t mix(std::uint64_t v) {
    state ^= v;
    state *= 1099511628211ull;
    return state;
  }
};

std::uint64_t fixture_golden_row(const int* node) {
  FixtureHash h;
  const std::uint64_t tok = fixture_node_token(node);
  h.mix(tok);
  return h.state;
}
