// Fixture: D8 pointer-order determinism — the three shapes.
// Expected: D8 on line 17 (map keyed on a pointer), D8 on line 19
// (std::less over a pointer type), D8 on line 21 (lambda comparator
// ordering two pointers by address). The int-keyed set on line 18 is
// clean.
#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <vector>

struct FixtureNode {
  int id = 0;
};

int fixture_pointer_order(std::vector<FixtureNode*>& nodes) {
  std::map<FixtureNode*, int> rank;
  std::set<int> ok_keys;
  const std::less<FixtureNode*> by_address{};
  std::sort(nodes.begin(), nodes.end(),
            [](const FixtureNode* a, const FixtureNode* b) { return a < b; });
  int sum = 0;
  for (FixtureNode* n : nodes) {
    rank[n] = n->id;
    ok_keys.insert(n->id);
    sum += by_address(n, nodes.front()) ? 1 : 0;
  }
  return sum + static_cast<int>(ok_keys.size());
}
