// Fixture: every violation carries a reasoned suppression — same-line and
// line-above forms. Expected: 4 suppressed findings, 0 unsuppressed.
#include <chrono>
#include <cstdlib>
#include <unordered_map>

double fixture_suppressed(const std::unordered_map<int, double>& m) {
  const auto t0 = std::chrono::steady_clock::now();  // smilint: allow(wall-clock) reason=fixture same-line suppression
  // smilint: allow(unseeded-rng) reason=fixture line-above suppression
  const int r = rand();
  double sum = 0.0;
  // smilint: allow(unordered-iter,float-reduce) reason=fixture multi-rule suppression
  for (const auto& [k, v] : m) { sum += v + k; }
  return sum + r + t0.time_since_epoch().count();
}
