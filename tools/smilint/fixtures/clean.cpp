// Fixture: idiomatic deterministic simulator code — keyed unordered
// lookups, ordered iteration, fixed-order float accumulation.
// Expected: no findings.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

struct CleanFixture {
  std::unordered_map<int, double> by_key_;
  std::map<int, double> ordered_;

  [[nodiscard]] double lookup(int key) const {
    const auto it = by_key_.find(key);  // keyed: fine
    return it == by_key_.end() ? 0.0 : it->second;
  }

  [[nodiscard]] double ordered_sum() const {
    double sum = 0.0;
    for (const auto& [k, v] : ordered_) sum += v;  // ordered map: fine
    return sum;
  }

  [[nodiscard]] long vector_sum(const std::vector<int>& xs) const {
    long sum = 0;
    for (const int x : xs) sum += x;
    return sum;
  }
};
