// Fixture: C1 guarded-by, all three failure shapes in one mutex-holding
// class under a `concurrent` manifest prefix.
// Expected: C1 on line 16 (guarded field touched without the lock), C1 on
// line 23 (guarded_by names no mutex member), C1 on line 24 (mutable
// field with no annotation at all). The locked access on line 14 is
// clean.
#include <mutex>
#include <vector>

class FixtureLedger {
 public:
  void record_locked(int v) {
    const std::lock_guard<std::mutex> lock{mu};
    pending.push_back(v);
  }
  void record_unlocked(int v) { pending.push_back(v); }

  [[nodiscard]] int jobs() const { return open_jobs; }

 private:
  std::mutex mu;
  std::vector<int> pending;   // guarded_by(mu)
  double temp_score = 0.0;    // guarded_by(scores_mu)
  int open_jobs = 0;
};
