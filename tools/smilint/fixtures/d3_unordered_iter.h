// Fixture header: the unordered member lives here; the iteration hazards
// live in the paired .cpp, exercising cross-file name harvesting.
#pragma once

#include <string>
#include <unordered_map>

struct FixtureTable {
  std::unordered_map<int, std::string> rows_;
  [[nodiscard]] long walk() const;
  [[nodiscard]] long walk_iter() const;
};
