// smilint — determinism & invariant static analysis for the smilab tree.
//
// The reproduction's strongest property is that every table and figure is
// bit-identical from (config, seed): golden FNV-1a hashes pin the output,
// and PR-2/PR-3 only shipped because bit-equality gates caught regressions.
// Runtime tests can only catch nondeterminism that happens to fire; smilint
// rejects the *sources* of nondeterminism at lint time:
//
//   D1 wall-clock      no std::chrono clocks / time() / gettimeofday in
//                      simulation code — simulation state must advance on
//                      SimTime only.
//   D2 unseeded-rng    no rand()/std::random_device/std::mt19937 — every
//                      stochastic draw goes through the seeded smilab Rng.
//   D3 unordered-iter  no iteration over std::unordered_{map,set}: hash
//                      iteration order is unspecified and varies across
//                      libstdc++ versions, so it must never reach output
//                      or event ordering. Keyed find/erase is fine.
//   D4 std-function    no std::function in hot-path files (the PR-2
//                      lesson: type-erased callbacks allocate and branch;
//                      use InlineCallback). Enforced only on files the
//                      manifest marks `hot-path`.
//   D5 raw-new-delete  no raw new/delete outside the slab allocators
//                      (manifest `slab` prefixes: sim/event_queue,
//                      sim/inline_callback, sim/transport own them).
//   D6 float-reduce    no accumulation-order-sensitive floating-point
//                      reductions outside stats/: float += inside an
//                      unordered-container loop, or std::reduce /
//                      std::transform_reduce (reduction order
//                      unspecified).
//
// The engine is a lightweight lexer (comments / string literals /
// preprocessor lines stripped; identifiers and operators tokenized) plus
// per-rule token-pattern matchers — deliberately no libclang dependency so
// the tool builds everywhere the simulator builds. False positives are
// handled by inline suppressions with *mandatory* reasons:
//
//   // smilint: allow(unordered-iter) reason=validation only; throws on
//   // any order
//
// A suppression covers its own line and the next code line (so a comment
// directly above the statement works). A suppression without a reason is
// itself reported (rule `suppression`, unsuppressable).
//
// Which rules apply where is controlled by a per-directory manifest
// (tools/smilint/smilint.rules): `skip`, `off <prefix> <rules>`,
// `hot-path <prefix>`, `slab <prefix>`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace smilint {

enum class Rule {
  kWallClock = 0,    // D1
  kUnseededRng,      // D2
  kUnorderedIter,    // D3
  kStdFunction,      // D4
  kRawNewDelete,     // D5
  kFloatReduce,      // D6
  kSuppression,      // malformed suppression (missing reason)
};
inline constexpr int kRuleCount = 7;

/// Stable rule identifier used in suppressions and reports ("wall-clock").
[[nodiscard]] std::string_view rule_id(Rule rule);

/// Paper-style rule code ("D1".."D6", "S0" for suppression hygiene).
[[nodiscard]] std::string_view rule_code(Rule rule);

/// Parse a rule id; returns false if `id` names no rule.
[[nodiscard]] bool parse_rule_id(std::string_view id, Rule& out);

struct Finding {
  std::string file;  ///< repo-relative path, forward slashes
  int line = 0;
  Rule rule = Rule::kWallClock;
  std::string message;
  bool suppressed = false;
  std::string reason;  ///< the suppression's reason when suppressed
};

/// Which rules are live for one file. D4 and D5 default to the manifest's
/// global posture (D4 off until `hot-path`, D5 on until `slab`).
struct RulePolicy {
  bool wall_clock = true;
  bool unseeded_rng = true;
  bool unordered_iter = true;
  bool std_function = false;  ///< only on manifest `hot-path` files
  bool raw_new_delete = true;
  bool float_reduce = true;

  [[nodiscard]] bool enabled(Rule rule) const;
  void set(Rule rule, bool on);
};

/// Analyze one translation unit. `paired_header` is the text of the
/// same-stem .h next to a .cpp (empty when none): it contributes declared
/// names (unordered containers, float locals) so a member declared in
/// foo.h is recognized when foo.cpp iterates it, but findings are only
/// reported against `text` itself.
[[nodiscard]] std::vector<Finding> analyze_source(const std::string& file,
                                                  std::string_view text,
                                                  std::string_view paired_header,
                                                  const RulePolicy& policy);

/// The per-directory rule manifest. Lines (order-independent; `#` comments):
///   skip <prefix>                 do not scan files under prefix
///   off <prefix> <rule>[,<rule>]  disable rules under prefix
///   hot-path <prefix>             enforce std-function (D4) under prefix
///   slab <prefix>                 exempt from raw-new-delete (D5)
class Manifest {
 public:
  /// Parse manifest text. Unknown verbs or rule ids throw std::runtime_error
  /// with the offending line, so a typo'd manifest cannot silently relax a
  /// rule.
  static Manifest parse(std::string_view text);

  /// Load from a file; a missing file yields the all-defaults manifest.
  static Manifest load(const std::string& path);

  [[nodiscard]] bool skipped(std::string_view rel_path) const;
  [[nodiscard]] RulePolicy policy_for(std::string_view rel_path) const;

 private:
  struct Directive {
    std::string prefix;
    enum class Kind { kSkip, kOff, kHotPath, kSlab } kind;
    std::vector<Rule> rules;  // kOff only
  };
  std::vector<Directive> directives_;
};

struct Report {
  std::vector<Finding> findings;  ///< sorted by (file, line, rule)
  int files_scanned = 0;

  [[nodiscard]] int unsuppressed_count() const;
  [[nodiscard]] int suppressed_count() const;
};

/// Scan `subdirs` (repo-relative) under `root` for C++ sources
/// (.h/.hpp/.hh/.cpp/.cc/.cxx), in sorted path order, applying `manifest`.
[[nodiscard]] Report run_tree(const std::string& root,
                              const std::vector<std::string>& subdirs,
                              const Manifest& manifest);

/// Machine-readable report for the CI gate.
[[nodiscard]] std::string to_json(const Report& report);

/// Human-readable report; suppressed findings shown when `show_suppressed`.
void print_text(std::ostream& os, const Report& report, bool show_suppressed);

}  // namespace smilint
