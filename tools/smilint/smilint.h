// smilint — determinism & invariant static analysis for the smilab tree.
//
// The reproduction's strongest property is that every table and figure is
// bit-identical from (config, seed): golden FNV-1a hashes pin the output,
// and the hot-path rewrites only shipped because bit-equality gates caught
// regressions. Runtime tests can only catch nondeterminism that happens to
// fire; smilint rejects the *sources* of nondeterminism at lint time.
//
// v2 is a two-phase, symbol-aware analyzer: phase 1 (index.{h,cpp}) lexes
// every scanned TU and builds a symbol index (function definitions with
// token-range bodies, call sites, class members, includes); phase 2 runs
// the per-file rules (rules_local.cpp) over each TU and the cross-file
// rules (rules_xfile.cpp) over the whole index.
//
// Per-file rules:
//   D1 wall-clock      no std::chrono clocks / time() / gettimeofday in
//                      simulation code — simulation state must advance on
//                      SimTime only.
//   D2 unseeded-rng    no rand()/std::random_device/std::mt19937 — every
//                      stochastic draw goes through the seeded smilab Rng.
//   D3 unordered-iter  no iteration over std::unordered_{map,set}: hash
//                      iteration order is unspecified. Keyed find/erase is
//                      fine.
//   D4 std-function    no std::function in hot-path files. Enforced only
//                      on files the manifest marks `hot-path`.
//   D5 raw-new-delete  no raw new/delete outside the slab allocators
//                      (manifest `slab` prefixes).
//   D6 float-reduce    no accumulation-order-sensitive floating-point
//                      reductions outside stats/.
//   D8 pointer-order   no std::map/std::set keyed on pointers, std::less
//                      on pointers, or sort-by-raw-pointer comparators:
//                      pointer values vary run to run, so pointer order
//                      reaching output is silent nondeterminism.
//
// Cross-file rules:
//   D7 nondet-taint    taint seeds at wall-clock reads, unseeded RNG,
//                      std::hash on pointers, pointer->integer casts, and
//                      thread ids; propagates through the call graph
//                      (bounded depth); reports when a tainted value
//                      reaches a sink — golden-hash inputs (Fnv64 mix*),
//                      canonical_key, trace emission, or any call site in
//                      a `hot-path` manifest file. Seeds whose own base
//                      rule is off or reasoned-suppressed do not taint
//                      (the manifest/suppression is the sanction).
//   I7 taint-unknown   info finding where the taint analysis fails open:
//                      a tainted function escaping into a function
//                      pointer / std::function, or the propagation depth
//                      bound. Info findings never gate.
//   C1 guarded-by      `// guarded_by(mu_)` field annotations, checked
//                      two ways: in manifest `concurrent` directories,
//                      every mutable field of a mutex-holding class must
//                      be annotated (guarded_by(<mutex>), or the special
//                      targets `internal` / `init`); and a field guarded
//                      by a mutex may only be touched lexically inside a
//                      lock_guard/scoped_lock/unique_lock scope naming
//                      that mutex.
//
// False positives are handled by inline suppressions with *mandatory*
// reasons:
//
//   // smilint: allow(unordered-iter) reason=validation only; throws on
//   // any order
//
// A suppression covers its own line and the next code line. A suppression
// without a reason is itself reported (rule `suppression`, S0,
// unsuppressable). On top of suppressions, a committed baseline file
// (tools/smilint/smilint.baseline) ratchets the tree: findings whose
// fingerprint (file|rule|snippet-hash — line-number independent) appears
// in the baseline are reported but do not gate, so CI fails only on NEW
// findings while pre-existing reasoned debt stays visible.
//
// Which rules apply where is controlled by a per-directory manifest
// (tools/smilint/smilint.rules): `skip`, `off <prefix> <rules>`,
// `hot-path <prefix>`, `slab <prefix>`, `concurrent <prefix>`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace smilint {

enum class Rule {
  kWallClock = 0,    // D1
  kUnseededRng,      // D2
  kUnorderedIter,    // D3
  kStdFunction,      // D4
  kRawNewDelete,     // D5
  kFloatReduce,      // D6
  kNondetTaint,      // D7 (cross-file)
  kPointerOrder,     // D8
  kGuardedBy,        // C1
  kSuppression,      // S0: malformed suppression (missing reason)
  kTaintUnknown,     // I7: info — taint analysis failed open
};
inline constexpr int kRuleCount = 11;

enum class Severity {
  kError = 0,  ///< gates CI when unsuppressed and not baselined
  kInfo,       ///< never gates; visibility only (taint-unknown)
};

/// Stable rule identifier used in suppressions and reports ("wall-clock").
[[nodiscard]] std::string_view rule_id(Rule rule);

/// Paper-style rule code ("D1".."D8", "C1", "S0", "I7").
[[nodiscard]] std::string_view rule_code(Rule rule);

/// One-line rule description (SARIF rule metadata, docs).
[[nodiscard]] std::string_view rule_description(Rule rule);

/// Parse a rule id; returns false if `id` names no rule.
[[nodiscard]] bool parse_rule_id(std::string_view id, Rule& out);

struct Finding {
  std::string file;  ///< repo-relative path, forward slashes
  int line = 0;
  int column = 0;    ///< 1-based byte column of the offending token
  Rule rule = Rule::kWallClock;
  Severity severity = Severity::kError;
  std::string message;
  std::string snippet;  ///< trimmed source line (CI annotations)
  bool suppressed = false;
  std::string reason;  ///< the suppression's reason when suppressed
  bool baselined = false;  ///< fingerprint matched the ratchet baseline
};

/// Line-number-independent identity of a finding, for the baseline
/// ratchet: "<file>|<rule-id>|<fnv64 of the whitespace-collapsed
/// snippet>". Moving code within a file does not invalidate the baseline;
/// editing the offending line does.
[[nodiscard]] std::string finding_fingerprint(const Finding& finding);

/// Which rules are live for one file, plus the file's manifest posture
/// (hot_path feeds D4 and the D7 sink set; concurrent feeds C1's
/// annotation requirement).
struct RulePolicy {
  bool wall_clock = true;
  bool unseeded_rng = true;
  bool unordered_iter = true;
  bool std_function = false;  ///< only on manifest `hot-path` files
  bool raw_new_delete = true;
  bool float_reduce = true;
  bool nondet_taint = true;
  bool pointer_order = true;
  bool guarded_by = true;

  bool hot_path = false;    ///< manifest `hot-path` (also a D7 sink)
  bool concurrent = false;  ///< manifest `concurrent` (C1 annotations)

  [[nodiscard]] bool enabled(Rule rule) const;
  void set(Rule rule, bool on);
};

/// Analyze one translation unit. `paired_header` is the text of the
/// same-stem .h next to a .cpp (empty when none): it contributes declared
/// names (unordered containers, float locals, guarded fields) so a member
/// declared in foo.h is recognized when foo.cpp touches it, but findings
/// are only reported against `text` itself. Cross-file taint (D7) is
/// limited to this TU + header here; run_tree() links the full call
/// graph.
[[nodiscard]] std::vector<Finding> analyze_source(const std::string& file,
                                                  std::string_view text,
                                                  std::string_view paired_header,
                                                  const RulePolicy& policy);

/// The per-directory rule manifest. Lines (order-independent; `#` comments):
///   skip <prefix>                 do not scan files under prefix
///   off <prefix> <rule>[,<rule>]  disable rules under prefix
///   hot-path <prefix>             enforce std-function (D4) under prefix;
///                                 hot-path files are also D7 taint sinks
///   slab <prefix>                 exempt from raw-new-delete (D5)
///   concurrent <prefix>           C1: mutable fields of mutex-holding
///                                 classes must carry guarded_by(...)
class Manifest {
 public:
  /// Parse manifest text. Unknown verbs or rule ids throw std::runtime_error
  /// with the offending line, so a typo'd manifest cannot silently relax a
  /// rule.
  static Manifest parse(std::string_view text);

  /// Load from a file; a missing file yields the all-defaults manifest.
  static Manifest load(const std::string& path);

  [[nodiscard]] bool skipped(std::string_view rel_path) const;
  [[nodiscard]] RulePolicy policy_for(std::string_view rel_path) const;

 private:
  struct Directive {
    std::string prefix;
    enum class Kind { kSkip, kOff, kHotPath, kSlab, kConcurrent } kind;
    std::vector<Rule> rules;  // kOff only
  };
  std::vector<Directive> directives_;
};

/// The committed ratchet: fingerprints of known findings that do not gate.
/// Format: one fingerprint per line, `#` comments. Parsing an entry that
/// is not `file|rule|16-hex` throws (the baseline fails closed, like the
/// manifest).
class Baseline {
 public:
  static Baseline parse(std::string_view text);
  /// Missing file yields an empty baseline.
  static Baseline load(const std::string& path);

  [[nodiscard]] bool contains(const std::string& fingerprint) const;
  [[nodiscard]] int size() const;
  /// Entries that matched no finding in the last apply() — stale debt.
  [[nodiscard]] std::vector<std::string> unmatched() const;

  /// Mark report findings whose fingerprint is baselined; records which
  /// entries matched (for unmatched()).
  void apply(struct Report& report);

  /// Serialize the unsuppressed error findings of `report` as a baseline
  /// file (the --write-baseline path).
  [[nodiscard]] static std::string render(const struct Report& report);

 private:
  std::vector<std::string> entries_;      // sorted, unique
  std::vector<bool> matched_;             // parallel to entries_
};

struct Report {
  std::vector<Finding> findings;  ///< sorted by (file, line, column, rule)
  int files_scanned = 0;

  /// Error findings that are neither suppressed nor baselined — the gate.
  [[nodiscard]] int unsuppressed_count() const;
  [[nodiscard]] int suppressed_count() const;
  [[nodiscard]] int baselined_count() const;
  [[nodiscard]] int info_count() const;
};

/// Scan `subdirs` (repo-relative) under `root` for C++ sources
/// (.h/.hpp/.hh/.cpp/.cc/.cxx), in sorted path order, applying `manifest`.
/// Runs both phases: per-file rules on every TU, then the cross-file rules
/// over the linked symbol index.
[[nodiscard]] Report run_tree(const std::string& root,
                              const std::vector<std::string>& subdirs,
                              const Manifest& manifest);

/// Machine-readable report for the CI gate.
[[nodiscard]] std::string to_json(const Report& report);

/// SARIF 2.1.0 (one run, full rule metadata) for code-scanning upload.
[[nodiscard]] std::string to_sarif(const Report& report);

/// Human-readable report; suppressed findings shown when `show_suppressed`.
void print_text(std::ostream& os, const Report& report, bool show_suppressed);

}  // namespace smilint
