// smilint phase 2 (internal): the rule passes.
//
// rules_local.cpp runs the per-file rules (D1..D6, D8) over one indexed
// TU; rules_xfile.cpp runs the cross-file rules (D7 nondet-taint, C1
// guarded-by) over the linked SourceIndex. smilint.cpp orchestrates both
// and applies suppressions / the baseline afterwards.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "index.h"
#include "smilint.h"

namespace smilint {

/// Per-file rules over one TU. `paired_header` (nullable) contributes
/// declared names only; findings are reported against `fi` alone.
/// Suppressions are NOT applied here.
void run_local_rules(const FileIndex& fi, const Lexed* paired_header,
                     const RulePolicy& policy, std::vector<Finding>& out);

/// Cross-file rules over the linked index. `policies` maps each
/// FileIndex::path to its manifest policy; findings land in the file
/// they occur in (seed gating and sink checks consult the policy of the
/// file involved). Suppressions are NOT applied here.
void run_xfile_rules(const SourceIndex& index,
                     const std::map<std::string, RulePolicy>& policies,
                     std::vector<Finding>& out);

/// Shared helper: build a Finding with snippet filled from the TU's raw
/// source lines, severity derived from the rule.
[[nodiscard]] Finding make_finding(const FileIndex& fi, Rule rule, int line,
                                   int col, std::string message);

}  // namespace smilint
