// smilint phase 2b: cross-file rules over the linked symbol index.
//
//   D7 nondet-taint  seed taint at nondeterministic reads, propagate it
//                    up the call graph (bounded depth), report where it
//                    reaches a sink. Fails open as I7 (info) where the
//                    lexical analysis cannot follow an edge.
//   C1 guarded-by    field annotations + lexical lock-scope checking.
#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "rules.h"

namespace smilint {

namespace {

const RulePolicy& policy_for(const std::map<std::string, RulePolicy>& policies,
                             const std::string& path) {
  static const RulePolicy kDefault;
  const auto it = policies.find(path);
  return it == policies.end() ? kDefault : it->second;
}

/// True when a reasoned suppression for `rule` covers `line` in this TU.
/// A reasoned suppression is the sanctioned audit point: what it waives
/// locally must not re-surface as taint elsewhere.
bool sanctioned_by_suppression(const FileIndex& fi, Rule rule, int line) {
  for (const SuppressionDirective& s : fi.lexed.suppressions) {
    if (!s.has_reason) continue;
    if (line != s.line && line != s.line + 1) continue;
    if (std::find(s.rules.begin(), s.rules.end(), rule) != s.rules.end()) {
      return true;
    }
  }
  return false;
}

// --- D7: nondeterminism taint ------------------------------------------------

struct Seed {
  int file = -1;          ///< index into SourceIndex::files
  std::size_t token = 0;  ///< token index of the seed
  int line = 0;
  int col = 0;
  std::string what;  ///< "wall-clock read", "pointer->integer cast", ...
};

const std::set<std::string>& wall_clock_calls() {
  static const std::set<std::string> kCalls = {
      "gettimeofday", "clock_gettime", "timespec_get", "ftime",
      "localtime",    "gmtime",        "mktime",       "time",
  };
  return kCalls;
}

const std::set<std::string>& rng_names() {
  static const std::set<std::string> kNames = {
      "rand",         "srand",      "drand48",       "lrand48",
      "mrand48",      "random_device", "mt19937",    "mt19937_64",
      "minstd_rand",  "minstd_rand0",  "knuth_b",
      "default_random_engine",
  };
  return kNames;
}

/// Angle block starting at toks[i] == "<" contains `needle` at depth 1.
bool angle_contains(const std::vector<Token>& toks, std::size_t i,
                    const std::set<std::string>& needles) {
  int depth = 0;
  for (std::size_t k = i; k < toks.size(); ++k) {
    const std::string& c = toks[k].text;
    if (c == "<") {
      ++depth;
    } else if (c == ">") {
      if (--depth == 0) return false;
    } else if (depth == 1 && needles.count(c) > 0) {
      return true;
    }
  }
  return false;
}

/// Collect the taint seeds of one TU. Seeds whose base rule (D1/D2) is
/// off or reasoned-suppressed at the seed site do not taint — the
/// manifest/suppression is the sanction (and prevents e.g. a benchmark
/// timer's `seconds()` from poisoning every same-named simulation
/// function through name-based linking).
void collect_seeds(const SourceIndex& index, int file_idx,
                   const RulePolicy& policy, std::vector<Seed>& out) {
  const FileIndex& fi = index.files[file_idx];
  const std::vector<Token>& toks = fi.lexed.tokens;
  const std::size_t n = toks.size();
  auto tok = [&](std::size_t k) -> const std::string& {
    static const std::string empty;
    return k < n ? toks[k].text : empty;
  };
  auto seed = [&](std::size_t at, Rule base, const char* what) {
    // Gate: the base rule must be live and unsanctioned at the seed site;
    // D7-only seeds gate on nondet_taint itself.
    if (base == Rule::kNondetTaint) {
      if (!policy.nondet_taint) return;
    } else if (!policy.enabled(base)) {
      return;
    }
    if (sanctioned_by_suppression(fi, base, toks[at].line)) return;
    if (base != Rule::kNondetTaint &&
        sanctioned_by_suppression(fi, Rule::kNondetTaint, toks[at].line)) {
      return;
    }
    out.push_back(
        {file_idx, at, toks[at].line, toks[at].col, what});
  };

  static const std::set<std::string> kPtrIntTypes = {
      "uintptr_t", "intptr_t", "size_t", "uint64_t", "ptrdiff_t",
  };
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& t = toks[i].text;
    const std::string& prev = i > 0 ? toks[i - 1].text : tok(n);
    // Wall-clock reads (D1's patterns).
    if (t == "std" && tok(i + 1) == "::" && tok(i + 2) == "chrono") {
      seed(i, Rule::kWallClock, "wall-clock read");
      continue;
    }
    if (wall_clock_calls().count(t) > 0 && tok(i + 1) == "(" && prev != "." &&
        prev != "->" && prev != "::") {
      seed(i, Rule::kWallClock, "wall-clock read");
      continue;
    }
    // Unseeded RNG (D2's names).
    if (rng_names().count(t) > 0 && prev != "." && prev != "->" &&
        (tok(i + 1) == "(" || tok(i + 1) == "{" || tok(i + 1) == "<" ||
         prev == "::")) {
      seed(i, Rule::kUnseededRng, "unseeded RNG draw");
      continue;
    }
    // std::hash over a pointer type.
    if (t == "hash" && tok(i + 1) == "<" &&
        angle_contains(toks, i + 1, {"*"})) {
      seed(i, Rule::kNondetTaint, "std::hash of a pointer");
      continue;
    }
    // Pointer -> integer casts.
    if (t == "reinterpret_cast" && tok(i + 1) == "<" &&
        angle_contains(toks, i + 1, kPtrIntTypes)) {
      seed(i, Rule::kNondetTaint, "pointer->integer cast");
      continue;
    }
    if (t == "(" && (tok(i + 1) == "uintptr_t" || tok(i + 1) == "intptr_t") &&
        tok(i + 2) == ")") {
      seed(i + 1, Rule::kNondetTaint, "pointer->integer cast");
      continue;
    }
    // Thread identity.
    if ((t == "this_thread" && tok(i + 1) == "::" && tok(i + 2) == "get_id") ||
        (t == "thread" && tok(i + 1) == "::" && tok(i + 2) == "id")) {
      seed(i, Rule::kNondetTaint, "thread id");
      continue;
    }
  }
}

struct TaintOrigin {
  std::string desc;  ///< "wall-clock read at file:line[, via `f`...]"
  int depth = 0;
};

constexpr int kTaintDepthBound = 6;

/// Find the function whose body (token range) contains `token`.
int enclosing_function(const FileIndex& fi, std::size_t token) {
  int best = -1;
  for (std::size_t f = 0; f < fi.functions.size(); ++f) {
    const FunctionDef& d = fi.functions[f];
    if (d.body_begin < token && token < d.body_end) best = static_cast<int>(f);
  }
  return best;
}

void run_taint(const SourceIndex& index,
               const std::map<std::string, RulePolicy>& policies,
               std::vector<Finding>& out) {
  // 1) Seeds per file.
  std::vector<Seed> seeds;
  std::vector<std::set<std::size_t>> seed_tokens(index.files.size());
  for (std::size_t f = 0; f < index.files.size(); ++f) {
    const RulePolicy& policy = policy_for(policies, index.files[f].path);
    collect_seeds(index, static_cast<int>(f), policy, seeds);
  }
  for (const Seed& s : seeds) seed_tokens[s.file].insert(s.token);

  // 2) Seed -> enclosing function; BFS up the (name-linked) call graph.
  std::map<std::string, TaintOrigin> tainted;
  std::deque<std::string> frontier;
  for (const Seed& s : seeds) {
    const FileIndex& fi = index.files[s.file];
    const int fn = enclosing_function(fi, s.token);
    if (fn < 0) continue;  // file-scope seed: nothing to propagate
    const std::string& name = fi.functions[fn].name;
    if (tainted.count(name) > 0) continue;
    tainted[name] = {s.what + " at " + fi.path + ":" + std::to_string(s.line),
                     0};
    frontier.push_back(name);
  }

  std::vector<Finding> depth_bound_hits;
  while (!frontier.empty()) {
    const std::string callee = frontier.front();
    frontier.pop_front();
    const TaintOrigin origin = tainted[callee];
    // Every call site of `callee` taints its enclosing function.
    for (const FileIndex& fi : index.files) {
      for (const CallSite& c : fi.calls) {
        if (c.callee != callee || c.caller < 0) continue;
        const std::string& caller = fi.functions[c.caller].name;
        if (tainted.count(caller) > 0) continue;
        if (origin.depth + 1 > kTaintDepthBound) {
          // Fail open: report where the bound stopped propagation.
          const RulePolicy& policy = policy_for(policies, fi.path);
          if (policy.nondet_taint) {
            depth_bound_hits.push_back(make_finding(
                fi, Rule::kTaintUnknown, c.line, c.col,
                "taint propagation depth bound reached at call to `" +
                    callee + "` (" + origin.desc +
                    "); callers of `" + caller + "` are unchecked"));
          }
          continue;
        }
        tainted[caller] = {origin.desc + ", via `" + callee + "`",
                           origin.depth + 1};
        frontier.push_back(caller);
      }
    }
  }
  out.insert(out.end(), depth_bound_hits.begin(), depth_bound_hits.end());

  // 3) Sinks.
  static const std::set<std::string> kSinkNames = {
      "canonical_key", "mix", "mix_signed", "record",
  };
  // Seed descriptions by (file index, token index), for sink messages.
  std::map<std::pair<std::size_t, std::size_t>, std::string> seed_what;
  for (const Seed& s : seeds) {
    seed_what[{static_cast<std::size_t>(s.file), s.token}] = s.what;
  }

  for (std::size_t file_idx = 0; file_idx < index.files.size(); ++file_idx) {
    const FileIndex& fi = index.files[file_idx];
    const RulePolicy& policy = policy_for(policies, fi.path);
    if (!policy.nondet_taint) continue;

    // 3a) Any call to a tainted function inside a hot-path file: hot-path
    // code feeds goldens/traces by definition.
    if (policy.hot_path) {
      for (const CallSite& c : fi.calls) {
        if (c.caller < 0) continue;  // file-scope: a declaration, not a call
        const auto it = tainted.find(c.callee);
        if (it == tainted.end()) continue;
        out.push_back(make_finding(
            fi, Rule::kNondetTaint, c.line, c.col,
            "hot-path call to `" + c.callee +
                "`, which is nondeterminism-tainted (" + it->second.desc +
                ")"));
      }
    }

    // 3b) Sink calls whose argument list carries taint: a tainted callee,
    // a seed expression, or a local assigned from a tainted call
    // (one-level tracking).
    const std::vector<Token>& toks = fi.lexed.tokens;
    const std::size_t n = toks.size();
    const std::set<std::size_t>& seeds_here = seed_tokens[file_idx];
    for (const FunctionDef& fn : fi.functions) {
      // Locals assigned from tainted calls within this body.
      std::set<std::string> tainted_locals;
      for (std::size_t k = fn.body_begin + 1; k + 1 < fn.body_end; ++k) {
        if (toks[k].text != "=" || !ident_start_char(toks[k - 1].text[0])) {
          continue;
        }
        for (std::size_t r = k + 1; r < fn.body_end; ++r) {
          const std::string& rt = toks[r].text;
          if (rt == ";") break;
          const bool tainted_call = r + 1 < n && toks[r + 1].text == "(" &&
                                    tainted.count(rt) > 0;
          if (tainted_call || seeds_here.count(r) > 0) {
            tainted_locals.insert(toks[k - 1].text);
            break;
          }
        }
      }
      for (const CallSite& c : fi.calls) {
        if (c.token <= fn.body_begin || c.token >= fn.body_end) continue;
        if (kSinkNames.count(c.callee) == 0) continue;
        // Argument token range: balanced parens after the callee.
        std::size_t open = c.token + 1;
        int depth = 0;
        std::size_t close = open;
        for (; close < n; ++close) {
          if (toks[close].text == "(") ++depth;
          if (toks[close].text == ")" && --depth == 0) break;
        }
        std::string carrier;
        std::string why;
        for (std::size_t k = open + 1; k < close; ++k) {
          const std::string& a = toks[k].text;
          const auto it = tainted.find(a);
          if (it != tainted.end()) {
            carrier = a;
            why = it->second.desc;
            break;
          }
          if (tainted_locals.count(a) > 0) {
            carrier = a;
            why = "local assigned from a tainted call";
            break;
          }
          if (seeds_here.count(k) > 0) {
            carrier = a;
            const auto sw = seed_what.find({file_idx, k});
            why = sw == seed_what.end() ? "nondeterministic expression"
                                        : sw->second + " inline in the argument";
            break;
          }
        }
        if (carrier.empty()) continue;
        out.push_back(make_finding(
            fi, Rule::kNondetTaint, c.line, c.col,
            "sink `" + c.callee + "` receives nondeterminism-tainted `" +
                carrier + "` (" + why + ")"));
      }
    }

    // 3c) Fail open: a tainted function's name used as a value (function
    // pointer / std::function) — the call graph cannot follow it.
    std::set<int> escape_lines;
    for (std::size_t k = 0; k < n; ++k) {
      const std::string& t = toks[k].text;
      const auto it = tainted.find(t);
      if (it == tainted.end()) continue;
      const std::string& next = k + 1 < n ? toks[k + 1].text : t;
      if (next == "(") continue;  // direct call or definition head
      const std::string& prev = k > 0 ? toks[k - 1].text : t;
      if (prev == "::" && next == "::") continue;  // mid-qualification
      // Declaration of the function itself (name directly after a type
      // would still be followed by "(") — anything else is an escape.
      if (escape_lines.count(toks[k].line) > 0) continue;
      escape_lines.insert(toks[k].line);
      out.push_back(make_finding(
          fi, Rule::kTaintUnknown, toks[k].line, toks[k].col,
          "tainted function `" + t + "` (" + it->second.desc +
              ") escapes as a value; taint analysis cannot follow "
              "indirect calls"));
    }
  }
}

// --- C1: guarded-by ----------------------------------------------------------

bool special_guard(const std::string& g) {
  return g == "internal" || g == "init";
}

struct VisibleClass {
  const ClassInfo* cls;
  const FileIndex* decl_file;
  bool own_tu;  ///< declared in the TU under analysis
};

/// The classes whose fields are visible to `fi`: its own, plus classes
/// from indexed files it includes (matched by path suffix), plus the
/// stem-paired header/source.
std::vector<VisibleClass> visible_classes(const SourceIndex& index,
                                          const FileIndex& fi) {
  std::vector<VisibleClass> out;
  for (const ClassInfo& c : fi.classes) out.push_back({&c, &fi, true});
  auto stem = [](const std::string& p) {
    const auto dot = p.rfind('.');
    return dot == std::string::npos ? p : p.substr(0, dot);
  };
  const std::string my_stem = stem(fi.path);
  auto path_matches_include = [](const std::string& path,
                                 const std::string& inc) {
    if (path == inc) return true;
    return path.size() > inc.size() &&
           path[path.size() - inc.size() - 1] == '/' &&
           path.compare(path.size() - inc.size(), inc.size(), inc) == 0;
  };
  for (const FileIndex& other : index.files) {
    if (&other == &fi) continue;
    bool included = stem(other.path) == my_stem;
    for (const std::string& inc : fi.lexed.includes) {
      if (path_matches_include(other.path, inc)) {
        included = true;
        break;
      }
    }
    if (!included) continue;
    for (const ClassInfo& c : other.classes) {
      out.push_back({&c, &other, false});
    }
  }
  return out;
}

/// Register the mutex names locked by a lock declaration starting at
/// toks[i] (lock_guard / scoped_lock / unique_lock); returns one past the
/// declaration, or `i` when toks[i] starts no lock declaration.
std::size_t match_lock_decl(const std::vector<Token>& toks, std::size_t i,
                            std::set<std::string>& scope_locks) {
  const std::size_t n = toks.size();
  auto tok = [&](std::size_t k) -> const std::string& {
    static const std::string empty;
    return k < n ? toks[k].text : empty;
  };
  std::size_t k = i;
  if (tok(k) == "std" && tok(k + 1) == "::") k += 2;
  const std::string& kind = tok(k);
  if (kind != "lock_guard" && kind != "scoped_lock" && kind != "unique_lock") {
    return i;
  }
  ++k;
  if (tok(k) == "<") k = skip_angle_block(toks, k);
  if (!ident_start_char(tok(k).empty() ? '\0' : tok(k)[0])) return i;
  ++k;  // the lock variable name
  const std::string open = tok(k);
  if (open != "(" && open != "{") return i;
  const std::string close = open == "(" ? ")" : "}";
  int depth = 0;
  std::string last_ident;
  for (; k < n; ++k) {
    const std::string& t = toks[k].text;
    if (t == open) ++depth;
    if (t == close && --depth == 0) {
      if (!last_ident.empty()) scope_locks.insert(last_ident);
      return k + 1;
    }
    if (t == "," && depth == 1) {
      // scoped_lock(a.mu, b.mu): each top-level expression locks one mutex.
      if (!last_ident.empty()) scope_locks.insert(last_ident);
      last_ident.clear();
      continue;
    }
    if (ident_start_char(t[0])) last_ident = t;
  }
  return k;
}

void run_guarded_by(const SourceIndex& index,
                    const std::map<std::string, RulePolicy>& policies,
                    std::vector<Finding>& out) {
  for (const FileIndex& fi : index.files) {
    const RulePolicy& policy = policy_for(policies, fi.path);
    if (!policy.guarded_by) continue;
    const std::vector<Token>& toks = fi.lexed.tokens;

    // 1) Annotation requirement + target validation, for classes declared
    // in this TU.
    for (const ClassInfo& cls : fi.classes) {
      if (!cls.has_mutex) continue;
      std::set<std::string> mutex_names;
      for (const FieldDecl& f : cls.fields) {
        if (f.is_mutex) mutex_names.insert(f.name);
      }
      for (const FieldDecl& f : cls.fields) {
        const bool exempt = f.is_mutex || f.is_cv || f.is_atomic ||
                            f.is_const || f.is_reference;
        if (exempt) continue;
        if (!f.has_guard) {
          if (policy.concurrent) {
            out.push_back(make_finding(
                fi, Rule::kGuardedBy, f.line, f.col,
                "mutable field `" + f.name + "` of mutex-holding `" +
                    cls.name +
                    "` lacks a guarded_by(...) annotation (use the mutex "
                    "name, or `internal`/`init`)"));
          }
          continue;
        }
        if (!special_guard(f.guard) && mutex_names.count(f.guard) == 0) {
          out.push_back(make_finding(
              fi, Rule::kGuardedBy, f.line, f.col,
              "guarded_by(" + f.guard + ") on `" + f.name +
                  "` names no mutex member of `" + cls.name + "`"));
        }
      }
    }

    // 2) Lexical lock-scope checking against all visible guarded fields.
    struct Guarded {
      std::string mutex;
      std::string cls;
      const FileIndex* decl_file;
      int decl_line;
      std::size_t body_begin, body_end;  ///< class body range (decl TU)
      bool own_tu;
    };
    std::map<std::string, Guarded> guarded;  // field name -> guard info
    for (const VisibleClass& vc : visible_classes(index, fi)) {
      std::set<std::string> mutex_names;
      for (const FieldDecl& f : vc.cls->fields) {
        if (f.is_mutex) mutex_names.insert(f.name);
      }
      for (const FieldDecl& f : vc.cls->fields) {
        if (!f.has_guard || special_guard(f.guard)) continue;
        if (mutex_names.count(f.guard) == 0) continue;  // flagged above
        guarded[f.name] = {f.guard,        vc.cls->name,
                           vc.decl_file,   f.line,
                           vc.cls->body_begin, vc.cls->body_end,
                           vc.own_tu};
      }
    }
    if (guarded.empty()) continue;

    std::set<std::pair<int, std::string>> reported;  // (line, field)
    for (const FunctionDef& fn : fi.functions) {
      std::vector<std::set<std::string>> scopes;
      scopes.emplace_back();
      auto held = [&](const std::string& mu) {
        for (const auto& s : scopes) {
          if (s.count(mu) > 0) return true;
        }
        return false;
      };
      for (std::size_t k = fn.body_begin + 1; k < fn.body_end; ++k) {
        const std::string& t = toks[k].text;
        if (t == "{") {
          scopes.emplace_back();
          continue;
        }
        if (t == "}") {
          if (scopes.size() > 1) scopes.pop_back();
          continue;
        }
        const std::size_t after = match_lock_decl(toks, k, scopes.back());
        if (after != k) {
          k = after - 1;
          continue;
        }
        const auto g = guarded.find(t);
        if (g == guarded.end()) continue;
        const std::string& next = k + 1 < toks.size() ? toks[k + 1].text : t;
        if (next == "(") continue;  // a call, not the field
        const std::string& prev = k > 0 ? toks[k - 1].text : t;
        // Member-access context only: `x.field` / `p->field`, a member
        // function of the declaring class (Class::fn), or an inline
        // method inside the class body itself. Bare same-name locals in
        // unrelated functions are not accesses.
        const bool member_prefix = prev == "." || prev == "->";
        const bool member_fn =
            fn.qualified.rfind(g->second.cls + "::", 0) == 0;
        const bool inline_method =
            g->second.own_tu && fn.body_begin > g->second.body_begin &&
            fn.body_end < g->second.body_end;
        if (!member_prefix && !member_fn && !inline_method) continue;
        if (prev == "::") continue;  // qualified name, not an access
        if (held(g->second.mutex)) continue;
        const Token& at = toks[k];
        if (!reported.insert({at.line, t}).second) continue;
        out.push_back(make_finding(
            fi, Rule::kGuardedBy, at.line, at.col,
            "field `" + t + "` (guarded_by(" + g->second.mutex + ") in `" +
                g->second.cls + "`) accessed without holding `" +
                g->second.mutex + "`"));
      }
    }
  }
}

}  // namespace

void run_xfile_rules(const SourceIndex& index,
                     const std::map<std::string, RulePolicy>& policies,
                     std::vector<Finding>& out) {
  run_taint(index, policies, out);
  run_guarded_by(index, policies, out);
}

}  // namespace smilint
