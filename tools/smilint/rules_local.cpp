// smilint phase 2a: per-file rules D1..D6 and D8 over one indexed TU.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "rules.h"

namespace smilint {

namespace {

void trim(std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) {
    s.clear();
    return;
  }
  const auto e = s.find_last_not_of(" \t\r\n");
  s = s.substr(b, e - b + 1);
}

// --- Declared-name harvesting ------------------------------------------------

struct DeclaredNames {
  std::set<std::string> unordered_vars;   ///< variables of unordered type
  std::set<std::string> unordered_types;  ///< aliases of unordered types
  std::set<std::string> float_vars;       ///< double/float variables
};

bool is_unordered_container(const std::string& t) {
  return t == "unordered_map" || t == "unordered_set" ||
         t == "unordered_multimap" || t == "unordered_multiset";
}

void harvest(const std::vector<Token>& toks, DeclaredNames& names) {
  const std::size_t n = toks.size();
  auto tok = [&](std::size_t k) -> const std::string& {
    static const std::string empty;
    return k < n ? toks[k].text : empty;
  };
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& t = toks[i].text;
    // using NAME = std::unordered_map<...>;
    if (t == "using" && i + 2 < n && tok(i + 2) == "=") {
      std::size_t j = i + 3;
      if (tok(j) == "std" && tok(j + 1) == "::") j += 2;
      if (is_unordered_container(tok(j))) {
        names.unordered_types.insert(tok(i + 1));
      }
      continue;
    }
    // [std::]unordered_map<...> [&|*] NAME   (declaration or parameter)
    const bool qualified = t == "std" && tok(i + 1) == "::";
    const std::size_t base = qualified ? i + 2 : i;
    const bool container = is_unordered_container(tok(base)) ||
                           names.unordered_types.count(tok(base)) > 0;
    if (container && (qualified || !names.unordered_types.count(t))) {
      std::size_t j = base + 1;
      if (tok(j) == "<") j = skip_angle_block(toks, j);
      while (tok(j) == "&" || tok(j) == "*" || tok(j) == "const") ++j;
      if (j < n && ident_start_char(tok(j)[0]) &&
          tok(j + 1) != "(") {  // not a function returning one
        names.unordered_vars.insert(tok(j));
      }
      if (qualified) i = base;  // resume after "std :: name"
      continue;
    }
    // Alias-typed declarations: ALIAS NAME;
    if (names.unordered_types.count(t) > 0 && i + 1 < n &&
        ident_start_char(tok(i + 1)[0]) && tok(i + 2) != "(") {
      names.unordered_vars.insert(tok(i + 1));
      continue;
    }
    // double/float NAME followed by ; = { , ) — a variable, not a function.
    if ((t == "double" || t == "float") && i + 2 < n &&
        ident_start_char(tok(i + 1)[0])) {
      const std::string& after = tok(i + 2);
      if (after == ";" || after == "=" || after == "{" || after == "," ||
          after == ")" || after == "+=") {
        names.float_vars.insert(tok(i + 1));
      }
    }
  }
}

// --- Rule matchers -----------------------------------------------------------

const std::set<std::string>& wall_clock_calls() {
  static const std::set<std::string> kCalls = {
      "gettimeofday", "clock_gettime", "timespec_get", "ftime",
      "localtime",    "gmtime",        "mktime",
  };
  return kCalls;
}

const std::set<std::string>& banned_rng_names() {
  static const std::set<std::string> kNames = {
      "rand",          "srand",        "drand48",
      "lrand48",       "mrand48",      "random_device",
      "mt19937",       "mt19937_64",   "minstd_rand",
      "minstd_rand0",  "knuth_b",      "default_random_engine",
      "random_shuffle",
  };
  return kNames;
}

struct Matcher {
  const FileIndex& fi;
  const DeclaredNames& names;
  const RulePolicy& policy;
  std::vector<Finding>& findings;

  [[nodiscard]] const std::string& tok(std::size_t k) const {
    static const std::string empty;
    return k < fi.lexed.tokens.size() ? fi.lexed.tokens[k].text : empty;
  }

  void add(Rule rule, std::size_t at, std::string message) {
    if (!policy.enabled(rule)) return;
    const Token& t = fi.lexed.tokens[at];
    findings.push_back(make_finding(fi, rule, t.line, t.col,
                                    std::move(message)));
  }

  void run() {
    const std::vector<Token>& toks = fi.lexed.tokens;
    const std::size_t n = toks.size();
    // Body extents (token ranges) of range-for loops over unordered
    // containers, for the D6 combination rule.
    std::vector<std::pair<std::size_t, std::size_t>> unordered_bodies;

    for (std::size_t i = 0; i < n; ++i) {
      const std::string& t = toks[i].text;
      const std::string& prev = i > 0 ? toks[i - 1].text : tok(n);

      // D1: std::chrono anywhere; C time functions; bare time( calls.
      if (t == "std" && tok(i + 1) == "::" && tok(i + 2) == "chrono") {
        add(Rule::kWallClock, i,
            "std::chrono clock in simulation code; simulation state must "
            "advance on SimTime only");
      }
      if (wall_clock_calls().count(t) > 0 && tok(i + 1) == "(" &&
          prev != "." && prev != "->") {
        add(Rule::kWallClock, i, "wall-clock call `" + t + "()`; use SimTime");
      }
      if (t == "time" && tok(i + 1) == "(" && prev != "." && prev != "->") {
        // Allow member/qualified uses like SimClock::time(); flag ::time()
        // and std::time().
        const bool qualified_member =
            prev == "::" && i >= 2 && ident_start_char(tok(i - 2)[0]) &&
            tok(i - 2) != "std";
        if (!qualified_member) {
          add(Rule::kWallClock, i, "wall-clock call `time()`; use SimTime");
        }
      }

      // D2: libc / <random> generators outside the seeded smilab Rng.
      if (banned_rng_names().count(t) > 0 && prev != "." && prev != "->") {
        const bool call_or_type =
            tok(i + 1) == "(" || tok(i + 1) == "{" || tok(i + 1) == "<" ||
            prev == "::" || ident_start_char(tok(i + 1)[0]);
        if (call_or_type) {
          add(Rule::kUnseededRng, i,
              "`" + t + "` bypasses the seeded smilab Rng stream");
        }
      }

      // D3: range-for over a declared unordered container.
      if (t == "for" && tok(i + 1) == "(") {
        std::size_t close = i + 1;
        int depth = 0;
        std::size_t colon = 0;
        for (; close < n; ++close) {
          const std::string& c = toks[close].text;
          if (c == "(") ++depth;
          if (c == ")" && --depth == 0) break;
          if (c == ":" && depth == 1 && colon == 0) colon = close;
        }
        if (colon != 0) {
          for (std::size_t k = colon + 1; k < close; ++k) {
            if (names.unordered_vars.count(toks[k].text) > 0) {
              add(Rule::kUnorderedIter, i,
                  "iteration over unordered container `" + toks[k].text +
                      "`; hash order is unspecified and must not reach "
                      "output");
              // Record the loop body for the D6 combination rule.
              std::size_t body = close + 1;
              if (tok(body) == "{") {
                int braces = 0;
                std::size_t end = body;
                for (; end < n; ++end) {
                  if (toks[end].text == "{") ++braces;
                  if (toks[end].text == "}" && --braces == 0) break;
                }
                unordered_bodies.emplace_back(body, end);
              }
              break;
            }
          }
        }
      }

      // D3: explicit iterator walks over a declared unordered container.
      // Only begin/cbegin start an iteration; `it != m.end()` after a
      // keyed find() is a sentinel comparison, not an order dependence.
      if (names.unordered_vars.count(t) > 0 && tok(i + 1) == "." &&
          (tok(i + 2) == "begin" || tok(i + 2) == "cbegin") &&
          tok(i + 3) == "(") {
        add(Rule::kUnorderedIter, i,
            "iterator over unordered container `" + t +
                "`; hash order is unspecified and must not reach output");
      }

      // D4: std::function in manifest-marked hot-path files.
      if (t == "std" && tok(i + 1) == "::" && tok(i + 2) == "function") {
        add(Rule::kStdFunction, i,
            "std::function in a hot-path file (PR-2 lesson: type-erased "
            "callbacks allocate and branch; use InlineCallback)");
      }

      // D5: raw new/delete outside the slab allocators.
      if (t == "new" && prev != "operator") {
        add(Rule::kRawNewDelete, i,
            "raw `new` outside the slab allocators (sim/event_queue, "
            "sim/transport own allocation)");
      }
      if (t == "delete" && prev != "operator" && prev != "=") {
        add(Rule::kRawNewDelete, i, "raw `delete` outside the slab allocators");
      }

      // D6: unspecified-order reduction algorithms.
      if (t == "std" && tok(i + 1) == "::" &&
          (tok(i + 2) == "reduce" || tok(i + 2) == "transform_reduce")) {
        add(Rule::kFloatReduce, i,
            "std::" + tok(i + 2) +
                " has unspecified reduction order; accumulate in stats/ "
                "or use a fixed-order loop");
      }

      // D8: std::map/set keyed on a pointer type — pointer values vary
      // run to run, so their order must never shape output.
      if (t == "std" && tok(i + 1) == "::" &&
          (tok(i + 2) == "map" || tok(i + 2) == "set" ||
           tok(i + 2) == "multimap" || tok(i + 2) == "multiset") &&
          tok(i + 3) == "<") {
        // Inspect the first template argument: a "*" at angle depth 1
        // before the first depth-1 "," means the key is a pointer.
        int depth = 0;
        bool pointer_key = false;
        for (std::size_t k = i + 3; k < n; ++k) {
          const std::string& c = toks[k].text;
          if (c == "<") {
            ++depth;
          } else if (c == ">") {
            if (--depth == 0) break;
          } else if (c == "," && depth == 1) {
            break;
          } else if (c == "*" && depth == 1) {
            pointer_key = true;
          }
        }
        if (pointer_key) {
          add(Rule::kPointerOrder, i + 2,
              "std::" + tok(i + 2) +
                  " keyed on a pointer: iteration order follows allocator "
                  "addresses and varies run to run; key on a stable id");
        }
      }

      // D8: std::less<T*> — explicit pointer-value ordering.
      if (t == "less" && tok(i + 1) == "<") {
        int depth = 0;
        bool pointer_arg = false;
        for (std::size_t k = i + 1; k < n; ++k) {
          const std::string& c = toks[k].text;
          if (c == "<") {
            ++depth;
          } else if (c == ">") {
            if (--depth == 0) break;
          } else if (c == "*" && depth == 1) {
            pointer_arg = true;
          }
        }
        if (pointer_arg) {
          add(Rule::kPointerOrder, i,
              "std::less on a pointer type orders by raw address; order "
              "varies run to run");
        }
      }

      // D8: lambda comparator ordering two pointer parameters by value:
      //   [...](const T* a, const T* b) { return a < b; }
      if (t == "]" && tok(i + 1) == "(") {
        std::size_t close = i + 1;
        int depth = 0;
        for (; close < n; ++close) {
          if (toks[close].text == "(") ++depth;
          if (toks[close].text == ")" && --depth == 0) break;
        }
        // Split params at depth-1 commas; a pointer param contributes its
        // trailing identifier.
        std::vector<std::string> ptr_params;
        int params = 0;
        {
          std::size_t start = i + 2;
          depth = 1;
          bool star = false;
          std::string last_ident;
          for (std::size_t k = i + 2; k <= close && k < n; ++k) {
            const std::string& c = toks[k].text;
            if (c == "(" || c == "<") ++depth;
            if (c == ">" && depth > 1) --depth;
            const bool end_param =
                (c == "," && depth == 1) || (c == ")" && k == close);
            if (!end_param) {
              if (c == "*") star = true;
              if (ident_start_char(c[0])) last_ident = c;
              continue;
            }
            if (k > start) ++params;
            if (star && !last_ident.empty()) ptr_params.push_back(last_ident);
            star = false;
            last_ident.clear();
            start = k + 1;
          }
        }
        if (params == 2 && ptr_params.size() == 2 && tok(close + 1) == "{" &&
            tok(close + 2) == "return") {
          const std::string& a = tok(close + 3);
          const std::string& op = tok(close + 4);
          const std::string& b = tok(close + 5);
          const bool compares_params =
              (op == "<" || op == ">") &&
              ((a == ptr_params[0] && b == ptr_params[1]) ||
               (a == ptr_params[1] && b == ptr_params[0]));
          if (compares_params) {
            add(Rule::kPointerOrder, i,
                "comparator orders raw pointers `" + ptr_params[0] + "`/`" +
                    ptr_params[1] +
                    "` by address; sort by a stable key instead");
          }
        }
      }
    }

    // D6: floating accumulation inside an unordered-container loop body.
    for (const auto& [begin, end] : unordered_bodies) {
      for (std::size_t k = begin; k + 1 < end; ++k) {
        const std::string& op = toks[k + 1].text;
        if ((op == "+=" || op == "-=" || op == "*=") &&
            names.float_vars.count(toks[k].text) > 0) {
          add(Rule::kFloatReduce, k,
              "floating-point accumulation into `" + toks[k].text +
                  "` inside an unordered-container loop: the sum depends "
                  "on hash iteration order");
        }
      }
    }
  }
};

}  // namespace

Finding make_finding(const FileIndex& fi, Rule rule, int line, int col,
                     std::string message) {
  Finding f;
  f.file = fi.path;
  f.line = line;
  f.column = col;
  f.rule = rule;
  f.severity = rule == Rule::kTaintUnknown ? Severity::kInfo : Severity::kError;
  f.message = std::move(message);
  if (line >= 1 && line <= static_cast<int>(fi.lexed.lines.size())) {
    std::string snippet = fi.lexed.lines[line - 1];
    trim(snippet);
    f.snippet = std::move(snippet);
  }
  return f;
}

void run_local_rules(const FileIndex& fi, const Lexed* paired_header,
                     const RulePolicy& policy, std::vector<Finding>& out) {
  DeclaredNames names;
  if (paired_header != nullptr) harvest(paired_header->tokens, names);
  harvest(fi.lexed.tokens, names);
  Matcher{fi, names, policy, out}.run();
}

}  // namespace smilint
