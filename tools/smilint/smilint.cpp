#include "smilint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace smilint {

namespace {

constexpr std::string_view kRuleIds[kRuleCount] = {
    "wall-clock",   "unseeded-rng",   "unordered-iter", "std-function",
    "raw-new-delete", "float-reduce", "suppression",
};
constexpr std::string_view kRuleCodes[kRuleCount] = {
    "D1", "D2", "D3", "D4", "D5", "D6", "S0",
};

}  // namespace

std::string_view rule_id(Rule rule) {
  return kRuleIds[static_cast<int>(rule)];
}

std::string_view rule_code(Rule rule) {
  return kRuleCodes[static_cast<int>(rule)];
}

bool parse_rule_id(std::string_view id, Rule& out) {
  for (int i = 0; i < kRuleCount; ++i) {
    if (kRuleIds[i] == id) {
      out = static_cast<Rule>(i);
      return true;
    }
  }
  return false;
}

bool RulePolicy::enabled(Rule rule) const {
  switch (rule) {
    case Rule::kWallClock:
      return wall_clock;
    case Rule::kUnseededRng:
      return unseeded_rng;
    case Rule::kUnorderedIter:
      return unordered_iter;
    case Rule::kStdFunction:
      return std_function;
    case Rule::kRawNewDelete:
      return raw_new_delete;
    case Rule::kFloatReduce:
      return float_reduce;
    case Rule::kSuppression:
      return true;  // suppression hygiene is never waivable
  }
  return true;
}

void RulePolicy::set(Rule rule, bool on) {
  switch (rule) {
    case Rule::kWallClock:
      wall_clock = on;
      break;
    case Rule::kUnseededRng:
      unseeded_rng = on;
      break;
    case Rule::kUnorderedIter:
      unordered_iter = on;
      break;
    case Rule::kStdFunction:
      std_function = on;
      break;
    case Rule::kRawNewDelete:
      raw_new_delete = on;
      break;
    case Rule::kFloatReduce:
      float_reduce = on;
      break;
    case Rule::kSuppression:
      break;  // not configurable
  }
}

namespace {

// --- Lexer -------------------------------------------------------------------

struct Token {
  std::string text;
  int line = 0;
};

/// A suppression directive parsed from a comment.
struct Suppression {
  int line = 0;                  ///< line the comment ends on
  std::vector<Rule> rules;
  std::string reason;
  bool has_reason = false;
  bool used = false;
};

struct Lexed {
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

void trim(std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) {
    s.clear();
    return;
  }
  const auto e = s.find_last_not_of(" \t\r\n");
  s = s.substr(b, e - b + 1);
}

/// Parse `smilint: allow(<rule>[,<rule>]) reason=<text>` out of a comment.
/// Malformed rule lists are reported as a reason-less suppression so they
/// surface as S0 findings instead of being silently ignored.
void parse_suppression(std::string_view comment, int line,
                       std::vector<Suppression>& out) {
  const auto at = comment.find("smilint:");
  if (at == std::string_view::npos) return;
  std::string_view rest = comment.substr(at + 8);
  Suppression s;
  s.line = line;
  const auto open = rest.find("allow(");
  if (open == std::string_view::npos) return;
  const auto close = rest.find(')', open);
  if (close == std::string_view::npos) {
    out.push_back(std::move(s));  // malformed: no rule list
    return;
  }
  std::string_view list = rest.substr(open + 6, close - open - 6);
  while (!list.empty()) {
    const auto comma = list.find(',');
    std::string one{list.substr(0, comma)};
    trim(one);
    Rule rule;
    if (!one.empty() && parse_rule_id(one, rule)) s.rules.push_back(rule);
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
  std::string_view after = rest.substr(close + 1);
  const auto r = after.find("reason=");
  if (r != std::string_view::npos) {
    std::string reason{after.substr(r + 7)};
    trim(reason);
    if (!reason.empty()) {
      s.reason = std::move(reason);
      s.has_reason = true;
    }
  }
  out.push_back(std::move(s));
}

/// Strip comments, string/char literals, and preprocessor directives;
/// tokenize what remains. Comments are scanned for suppression directives.
Lexed lex(std::string_view text) {
  Lexed out;
  std::string code;  // code-only text, literals blanked, one pass
  code.reserve(text.size());
  std::vector<int> code_lines;  // line number per code byte
  int line = 1;

  std::size_t i = 0;
  const std::size_t n = text.size();
  auto peek = [&](std::size_t k) -> char { return k < n ? text[k] : '\0'; };

  bool at_line_start = true;  // only whitespace seen so far on this line
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      at_line_start = true;
      code.push_back('\n');
      code_lines.push_back(line - 1);
      ++i;
      continue;
    }
    if (at_line_start && c == '#') {
      // Preprocessor directive: drop it (with backslash continuations).
      while (i < n) {
        if (text[i] == '\\' && peek(i + 1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (text[i] == '\n') break;
        ++i;
      }
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) at_line_start = false;
    if (c == '/' && peek(i + 1) == '/') {
      const std::size_t start = i + 2;
      while (i < n && text[i] != '\n') ++i;
      parse_suppression(text.substr(start, i - start), line, out.suppressions);
      continue;
    }
    if (c == '/' && peek(i + 1) == '*') {
      const std::size_t start = i + 2;
      i += 2;
      while (i < n && !(text[i] == '*' && peek(i + 1) == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      parse_suppression(text.substr(start, i - start), line, out.suppressions);
      if (i < n) i += 2;
      continue;
    }
    if (c == 'R' && peek(i + 1) == '"') {
      // Raw string literal R"delim(...)delim".
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(') delim.push_back(text[j++]);
      const std::string closer = ")" + delim + "\"";
      const auto end = text.find(closer, j);
      const std::size_t stop = end == std::string_view::npos
                                   ? n
                                   : end + closer.size();
      for (std::size_t k = i; k < stop; ++k) {
        if (text[k] == '\n') ++line;
      }
      i = stop;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\') ++i;
        if (i < n && text[i] == '\n') ++line;
        if (i < n) ++i;
      }
      if (i < n) ++i;
      continue;
    }
    code.push_back(c);
    code_lines.push_back(line);
    ++i;
  }

  // Tokenize the code-only text.
  std::size_t p = 0;
  const std::size_t m = code.size();
  while (p < m) {
    const char c = code[p];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++p;
      continue;
    }
    const int tok_line = code_lines[p];
    if (ident_start(c)) {
      std::size_t q = p;
      while (q < m && ident_char(code[q])) ++q;
      out.tokens.push_back({code.substr(p, q - p), tok_line});
      p = q;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t q = p;
      while (q < m && (ident_char(code[q]) || code[q] == '.' ||
                       code[q] == '\'')) {
        ++q;
      }
      p = q;  // numbers never participate in a rule pattern
      continue;
    }
    // Multi-char operators the matchers care about; everything else is a
    // single-char symbol token.
    auto two = [&](char a, char b) {
      return c == a && p + 1 < m && code[p + 1] == b;
    };
    if (two(':', ':') || two('+', '=') || two('-', '=') || two('*', '=') ||
        two('/', '=') || two('-', '>')) {
      out.tokens.push_back({code.substr(p, 2), tok_line});
      p += 2;
      continue;
    }
    out.tokens.push_back({std::string(1, c), tok_line});
    ++p;
  }
  return out;
}

// --- Declared-name harvesting ------------------------------------------------

struct DeclaredNames {
  std::set<std::string> unordered_vars;   ///< variables of unordered type
  std::set<std::string> unordered_types;  ///< aliases of unordered types
  std::set<std::string> float_vars;       ///< double/float variables
};

bool is_unordered_container(const std::string& t) {
  return t == "unordered_map" || t == "unordered_set" ||
         t == "unordered_multimap" || t == "unordered_multiset";
}

/// Skip a balanced <...> starting at tokens[i] == "<"; returns the index
/// one past the closing ">". `::` never contains angles; `->` can't appear
/// in a template argument list we care about.
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  while (i < toks.size()) {
    const std::string& t = toks[i].text;
    if (t == "<") ++depth;
    if (t == ">" && --depth == 0) return i + 1;
    ++i;
  }
  return i;
}

void harvest(const std::vector<Token>& toks, DeclaredNames& names) {
  const std::size_t n = toks.size();
  auto tok = [&](std::size_t k) -> const std::string& {
    static const std::string empty;
    return k < n ? toks[k].text : empty;
  };
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& t = toks[i].text;
    // using NAME = std::unordered_map<...>;
    if (t == "using" && i + 2 < n && tok(i + 2) == "=") {
      std::size_t j = i + 3;
      if (tok(j) == "std" && tok(j + 1) == "::") j += 2;
      if (is_unordered_container(tok(j))) {
        names.unordered_types.insert(tok(i + 1));
      }
      continue;
    }
    // [std::]unordered_map<...> [&|*] NAME   (declaration or parameter)
    const bool qualified = t == "std" && tok(i + 1) == "::";
    const std::size_t base = qualified ? i + 2 : i;
    const bool container = is_unordered_container(tok(base)) ||
                           names.unordered_types.count(tok(base)) > 0;
    if (container && (qualified || !names.unordered_types.count(t))) {
      std::size_t j = base + 1;
      if (tok(j) == "<") j = skip_angles(toks, j);
      while (tok(j) == "&" || tok(j) == "*" || tok(j) == "const") ++j;
      if (j < n && ident_start(tok(j)[0]) &&
          tok(j + 1) != "(") {  // not a function returning one
        names.unordered_vars.insert(tok(j));
      }
      if (qualified) i = base;  // resume after "std :: name"
      continue;
    }
    // Alias-typed declarations: ALIAS NAME;
    if (names.unordered_types.count(t) > 0 && i + 1 < n &&
        ident_start(tok(i + 1)[0]) && tok(i + 2) != "(") {
      names.unordered_vars.insert(tok(i + 1));
      continue;
    }
    // double/float NAME followed by ; = { , ) — a variable, not a function.
    if ((t == "double" || t == "float") && i + 2 < n &&
        ident_start(tok(i + 1)[0])) {
      const std::string& after = tok(i + 2);
      if (after == ";" || after == "=" || after == "{" || after == "," ||
          after == ")" || after == "+=") {
        names.float_vars.insert(tok(i + 1));
      }
    }
  }
}

// --- Rule matchers -----------------------------------------------------------

const std::set<std::string>& wall_clock_calls() {
  static const std::set<std::string> kCalls = {
      "gettimeofday", "clock_gettime", "timespec_get", "ftime",
      "localtime",    "gmtime",        "mktime",
  };
  return kCalls;
}

const std::set<std::string>& banned_rng_names() {
  static const std::set<std::string> kNames = {
      "rand",          "srand",        "drand48",
      "lrand48",       "mrand48",      "random_device",
      "mt19937",       "mt19937_64",   "minstd_rand",
      "minstd_rand0",  "knuth_b",      "default_random_engine",
      "random_shuffle",
  };
  return kNames;
}

struct Matcher {
  const std::string& file;
  const std::vector<Token>& toks;
  const DeclaredNames& names;
  const RulePolicy& policy;
  std::vector<Finding>& findings;

  [[nodiscard]] const std::string& tok(std::size_t k) const {
    static const std::string empty;
    return k < toks.size() ? toks[k].text : empty;
  }

  void add(Rule rule, int line, std::string message) {
    if (!policy.enabled(rule)) return;
    findings.push_back({file, line, rule, std::move(message), false, {}});
  }

  void run() {
    const std::size_t n = toks.size();
    // Body extents (token ranges) of range-for loops over unordered
    // containers, for the D6 combination rule.
    std::vector<std::pair<std::size_t, std::size_t>> unordered_bodies;

    for (std::size_t i = 0; i < n; ++i) {
      const std::string& t = toks[i].text;
      const std::string& prev = i > 0 ? toks[i - 1].text : tok(n);

      // D1: std::chrono anywhere; C time functions; bare time( calls.
      if (t == "std" && tok(i + 1) == "::" && tok(i + 2) == "chrono") {
        add(Rule::kWallClock, toks[i].line,
            "std::chrono clock in simulation code; simulation state must "
            "advance on SimTime only");
      }
      if (wall_clock_calls().count(t) > 0 && tok(i + 1) == "(" &&
          prev != "." && prev != "->") {
        add(Rule::kWallClock, toks[i].line,
            "wall-clock call `" + t + "()`; use SimTime");
      }
      if (t == "time" && tok(i + 1) == "(" && prev != "." && prev != "->") {
        // Allow member/qualified uses like SimClock::time(); flag ::time()
        // and std::time().
        const bool qualified_member =
            prev == "::" && i >= 2 && ident_start(tok(i - 2)[0]) &&
            tok(i - 2) != "std";
        if (!qualified_member) {
          add(Rule::kWallClock, toks[i].line,
              "wall-clock call `time()`; use SimTime");
        }
      }

      // D2: libc / <random> generators outside the seeded smilab Rng.
      if (banned_rng_names().count(t) > 0 && prev != "." && prev != "->") {
        const bool call_or_type =
            tok(i + 1) == "(" || tok(i + 1) == "{" || tok(i + 1) == "<" ||
            prev == "::" || ident_start(tok(i + 1)[0]);
        if (call_or_type) {
          add(Rule::kUnseededRng, toks[i].line,
              "`" + t + "` bypasses the seeded smilab Rng stream");
        }
      }

      // D3: range-for over a declared unordered container.
      if (t == "for" && tok(i + 1) == "(") {
        std::size_t close = i + 1;
        int depth = 0;
        std::size_t colon = 0;
        for (; close < n; ++close) {
          const std::string& c = toks[close].text;
          if (c == "(") ++depth;
          if (c == ")" && --depth == 0) break;
          if (c == ":" && depth == 1 && colon == 0) colon = close;
        }
        if (colon != 0) {
          for (std::size_t k = colon + 1; k < close; ++k) {
            if (names.unordered_vars.count(toks[k].text) > 0) {
              add(Rule::kUnorderedIter, toks[i].line,
                  "iteration over unordered container `" + toks[k].text +
                      "`; hash order is unspecified and must not reach "
                      "output");
              // Record the loop body for the D6 combination rule.
              std::size_t body = close + 1;
              if (tok(body) == "{") {
                int braces = 0;
                std::size_t end = body;
                for (; end < n; ++end) {
                  if (toks[end].text == "{") ++braces;
                  if (toks[end].text == "}" && --braces == 0) break;
                }
                unordered_bodies.emplace_back(body, end);
              }
              break;
            }
          }
        }
      }

      // D3: explicit iterator walks over a declared unordered container.
      // Only begin/cbegin start an iteration; `it != m.end()` after a
      // keyed find() is a sentinel comparison, not an order dependence.
      if (names.unordered_vars.count(t) > 0 && tok(i + 1) == "." &&
          (tok(i + 2) == "begin" || tok(i + 2) == "cbegin") &&
          tok(i + 3) == "(") {
        add(Rule::kUnorderedIter, toks[i].line,
            "iterator over unordered container `" + t +
                "`; hash order is unspecified and must not reach output");
      }

      // D4: std::function in manifest-marked hot-path files.
      if (t == "std" && tok(i + 1) == "::" && tok(i + 2) == "function") {
        add(Rule::kStdFunction, toks[i].line,
            "std::function in a hot-path file (PR-2 lesson: type-erased "
            "callbacks allocate and branch; use InlineCallback)");
      }

      // D5: raw new/delete outside the slab allocators.
      if (t == "new" && prev != "operator") {
        add(Rule::kRawNewDelete, toks[i].line,
            "raw `new` outside the slab allocators (sim/event_queue, "
            "sim/transport own allocation)");
      }
      if (t == "delete" && prev != "operator" && prev != "=") {
        add(Rule::kRawNewDelete, toks[i].line,
            "raw `delete` outside the slab allocators");
      }

      // D6: unspecified-order reduction algorithms.
      if (t == "std" && tok(i + 1) == "::" &&
          (tok(i + 2) == "reduce" || tok(i + 2) == "transform_reduce")) {
        add(Rule::kFloatReduce, toks[i].line,
            "std::" + tok(i + 2) +
                " has unspecified reduction order; accumulate in stats/ "
                "or use a fixed-order loop");
      }
    }

    // D6: floating accumulation inside an unordered-container loop body.
    for (const auto& [begin, end] : unordered_bodies) {
      for (std::size_t k = begin; k + 1 < end; ++k) {
        const std::string& op = toks[k + 1].text;
        if ((op == "+=" || op == "-=" || op == "*=") &&
            names.float_vars.count(toks[k].text) > 0) {
          add(Rule::kFloatReduce, toks[k].line,
              "floating-point accumulation into `" + toks[k].text +
                  "` inside an unordered-container loop: the sum depends "
                  "on hash iteration order");
        }
      }
    }
  }
};

// --- Suppression application -------------------------------------------------

void apply_suppressions(std::vector<Suppression>& sups,
                        std::vector<Finding>& findings,
                        const std::string& file) {
  for (Finding& f : findings) {
    for (Suppression& s : sups) {
      if (f.line != s.line && f.line != s.line + 1) continue;
      const bool covers =
          std::find(s.rules.begin(), s.rules.end(), f.rule) != s.rules.end();
      if (!covers) continue;
      s.used = true;
      if (s.has_reason) {
        f.suppressed = true;
        f.reason = s.reason;
      }
      break;
    }
  }
  // Reason-less suppressions are findings themselves — whether or not they
  // matched, a directive without a reason is a policy violation.
  for (const Suppression& s : sups) {
    if (s.has_reason) continue;
    findings.push_back({file, s.line, Rule::kSuppression,
                        "suppression without a reason; write `smilint: "
                        "allow(<rule>) reason=<why>`",
                        false,
                        {}});
  }
}

}  // namespace

// --- Public entry points -----------------------------------------------------

std::vector<Finding> analyze_source(const std::string& file,
                                    std::string_view text,
                                    std::string_view paired_header,
                                    const RulePolicy& policy) {
  Lexed lexed = lex(text);
  DeclaredNames names;
  if (!paired_header.empty()) {
    const Lexed header = lex(paired_header);
    harvest(header.tokens, names);
  }
  harvest(lexed.tokens, names);

  std::vector<Finding> findings;
  Matcher{file, lexed.tokens, names, policy, findings}.run();
  apply_suppressions(lexed.suppressions, findings, file);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return static_cast<int>(a.rule) < static_cast<int>(b.rule);
            });
  return findings;
}

// --- Manifest ----------------------------------------------------------------

Manifest Manifest::parse(std::string_view text) {
  Manifest m;
  std::istringstream in{std::string(text)};
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    trim(raw);
    if (raw.empty()) continue;
    std::istringstream fields{raw};
    std::string verb, prefix, rules;
    fields >> verb >> prefix >> rules;
    auto bad = [&](const std::string& why) {
      throw std::runtime_error("smilint manifest line " +
                               std::to_string(line_no) + ": " + why);
    };
    if (prefix.empty()) bad("missing path prefix");
    Directive d;
    d.prefix = prefix;
    if (verb == "skip") {
      d.kind = Directive::Kind::kSkip;
    } else if (verb == "off") {
      d.kind = Directive::Kind::kOff;
      if (rules.empty()) bad("`off` needs a rule list");
      std::istringstream list{rules};
      std::string one;
      while (std::getline(list, one, ',')) {
        Rule rule;
        if (!parse_rule_id(one, rule)) bad("unknown rule `" + one + "`");
        d.rules.push_back(rule);
      }
    } else if (verb == "hot-path") {
      d.kind = Directive::Kind::kHotPath;
    } else if (verb == "slab") {
      d.kind = Directive::Kind::kSlab;
    } else {
      bad("unknown verb `" + verb + "`");
    }
    m.directives_.push_back(std::move(d));
  }
  return m;
}

Manifest Manifest::load(const std::string& path) {
  std::ifstream in{path};
  if (!in) return Manifest{};
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

namespace {
bool has_prefix(std::string_view path, std::string_view prefix) {
  return path.size() >= prefix.size() &&
         path.substr(0, prefix.size()) == prefix;
}
}  // namespace

bool Manifest::skipped(std::string_view rel_path) const {
  for (const Directive& d : directives_) {
    if (d.kind == Directive::Kind::kSkip && has_prefix(rel_path, d.prefix)) {
      return true;
    }
  }
  return false;
}

RulePolicy Manifest::policy_for(std::string_view rel_path) const {
  RulePolicy p;
  for (const Directive& d : directives_) {
    if (!has_prefix(rel_path, d.prefix)) continue;
    switch (d.kind) {
      case Directive::Kind::kSkip:
        break;
      case Directive::Kind::kOff:
        for (const Rule r : d.rules) p.set(r, false);
        break;
      case Directive::Kind::kHotPath:
        p.std_function = true;
        break;
      case Directive::Kind::kSlab:
        p.raw_new_delete = false;
        break;
    }
  }
  return p;
}

// --- Tree runner -------------------------------------------------------------

int Report::unsuppressed_count() const {
  int n = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed) ++n;
  }
  return n;
}

int Report::suppressed_count() const {
  return static_cast<int>(findings.size()) - unsuppressed_count();
}

namespace {

bool cpp_source(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".h" ||
         ext == ".hpp" || ext == ".hh";
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in{p, std::ios::binary};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

Report run_tree(const std::string& root, const std::vector<std::string>& subdirs,
                const Manifest& manifest) {
  namespace fs = std::filesystem;
  Report report;
  std::vector<fs::path> files;
  for (const std::string& sub : subdirs) {
    const fs::path dir = fs::path(root) / sub;
    if (!fs::exists(dir)) continue;
    if (fs::is_regular_file(dir)) {
      if (cpp_source(dir)) files.push_back(dir);
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && cpp_source(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& path : files) {
    const std::string rel =
        fs::relative(path, root).generic_string();
    if (manifest.skipped(rel)) continue;
    ++report.files_scanned;
    const RulePolicy policy = manifest.policy_for(rel);
    std::string header_text;
    if (path.extension() == ".cpp" || path.extension() == ".cc" ||
        path.extension() == ".cxx") {
      fs::path header = path;
      header.replace_extension(".h");
      if (fs::exists(header)) header_text = slurp(header);
    }
    std::vector<Finding> found =
        analyze_source(rel, slurp(path), header_text, policy);
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(found.begin()),
                           std::make_move_iterator(found.end()));
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return static_cast<int>(a.rule) < static_cast<int>(b.rule);
            });
  return report;
}

// --- Reporting ---------------------------------------------------------------

namespace {
void json_escape(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}
}  // namespace

std::string to_json(const Report& report) {
  std::string out = "{\n  \"files_scanned\": " +
                    std::to_string(report.files_scanned) +
                    ",\n  \"unsuppressed\": " +
                    std::to_string(report.unsuppressed_count()) +
                    ",\n  \"suppressed\": " +
                    std::to_string(report.suppressed_count()) +
                    ",\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : report.findings) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"file\": \"";
    json_escape(out, f.file);
    out += "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"";
    out += rule_id(f.rule);
    out += "\", \"code\": \"";
    out += rule_code(f.rule);
    out += "\", \"suppressed\": ";
    out += f.suppressed ? "true" : "false";
    out += ", \"message\": \"";
    json_escape(out, f.message);
    if (f.suppressed) {
      out += "\", \"reason\": \"";
      json_escape(out, f.reason);
    }
    out += "\"}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

void print_text(std::ostream& os, const Report& report, bool show_suppressed) {
  for (const Finding& f : report.findings) {
    if (f.suppressed && !show_suppressed) continue;
    os << f.file << ":" << f.line << ": [" << rule_code(f.rule) << " "
       << rule_id(f.rule) << "] " << f.message;
    if (f.suppressed) os << " (suppressed: " << f.reason << ")";
    os << "\n";
  }
  os << report.files_scanned << " files scanned, "
     << report.unsuppressed_count() << " violation(s), "
     << report.suppressed_count() << " suppressed\n";
}

}  // namespace smilint
