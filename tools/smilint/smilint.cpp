// smilint orchestration: manifest, suppressions, baseline ratchet, tree
// runner (two-phase), and report emitters (text / JSON / SARIF). The
// lexer and symbol index live in index.cpp; the rule passes in
// rules_local.cpp / rules_xfile.cpp.
#include "smilint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "index.h"
#include "rules.h"

namespace smilint {

namespace {

constexpr std::string_view kRuleIds[kRuleCount] = {
    "wall-clock",   "unseeded-rng", "unordered-iter", "std-function",
    "raw-new-delete", "float-reduce", "nondet-taint", "pointer-order",
    "guarded-by",   "suppression",  "taint-unknown",
};
constexpr std::string_view kRuleCodes[kRuleCount] = {
    "D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "C1", "S0", "I7",
};
constexpr std::string_view kRuleDescriptions[kRuleCount] = {
    "wall-clock read in simulation code; state must advance on SimTime",
    "RNG outside the seeded smilab Rng stream",
    "iteration over an unordered container; hash order is unspecified",
    "std::function in a hot-path file; use InlineCallback",
    "raw new/delete outside the slab allocators",
    "accumulation-order-sensitive floating-point reduction",
    "nondeterministic value reaches a determinism sink (cross-file taint)",
    "container or comparator ordered by raw pointer value",
    "mutex-guarded field accessed or declared against the lock discipline",
    "suppression directive without a reason",
    "taint analysis failed open (indirect call or depth bound); info only",
};

void trim(std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) {
    s.clear();
    return;
  }
  const auto e = s.find_last_not_of(" \t\r\n");
  s = s.substr(b, e - b + 1);
}

}  // namespace

std::string_view rule_id(Rule rule) {
  return kRuleIds[static_cast<int>(rule)];
}

std::string_view rule_code(Rule rule) {
  return kRuleCodes[static_cast<int>(rule)];
}

std::string_view rule_description(Rule rule) {
  return kRuleDescriptions[static_cast<int>(rule)];
}

bool parse_rule_id(std::string_view id, Rule& out) {
  for (int i = 0; i < kRuleCount; ++i) {
    if (kRuleIds[i] == id) {
      out = static_cast<Rule>(i);
      return true;
    }
  }
  return false;
}

bool RulePolicy::enabled(Rule rule) const {
  switch (rule) {
    case Rule::kWallClock:
      return wall_clock;
    case Rule::kUnseededRng:
      return unseeded_rng;
    case Rule::kUnorderedIter:
      return unordered_iter;
    case Rule::kStdFunction:
      return std_function;
    case Rule::kRawNewDelete:
      return raw_new_delete;
    case Rule::kFloatReduce:
      return float_reduce;
    case Rule::kNondetTaint:
      return nondet_taint;
    case Rule::kPointerOrder:
      return pointer_order;
    case Rule::kGuardedBy:
      return guarded_by;
    case Rule::kSuppression:
      return true;  // suppression hygiene is never waivable
    case Rule::kTaintUnknown:
      return nondet_taint;  // rides with the taint pass
  }
  return true;
}

void RulePolicy::set(Rule rule, bool on) {
  switch (rule) {
    case Rule::kWallClock:
      wall_clock = on;
      break;
    case Rule::kUnseededRng:
      unseeded_rng = on;
      break;
    case Rule::kUnorderedIter:
      unordered_iter = on;
      break;
    case Rule::kStdFunction:
      std_function = on;
      break;
    case Rule::kRawNewDelete:
      raw_new_delete = on;
      break;
    case Rule::kFloatReduce:
      float_reduce = on;
      break;
    case Rule::kNondetTaint:
      nondet_taint = on;
      break;
    case Rule::kPointerOrder:
      pointer_order = on;
      break;
    case Rule::kGuardedBy:
      guarded_by = on;
      break;
    case Rule::kSuppression:
    case Rule::kTaintUnknown:
      break;  // not independently configurable
  }
}

// --- Fingerprints ------------------------------------------------------------

std::string finding_fingerprint(const Finding& finding) {
  // FNV-1a over the snippet with ALL whitespace removed: stable across
  // reformatting and line moves, invalidated by edits to the code itself.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : finding.snippet) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(h));
  return finding.file + "|" + std::string(rule_id(finding.rule)) + "|" + hex;
}

// --- Suppression application -------------------------------------------------

namespace {

/// Apply one TU's suppression directives to its findings, then emit the
/// S0 hygiene findings for reason-less directives. Must run exactly once
/// per scanned file.
void apply_suppressions(const FileIndex& fi, std::vector<Finding>& findings) {
  for (Finding& f : findings) {
    for (const SuppressionDirective& s : fi.lexed.suppressions) {
      if (f.line != s.line && f.line != s.line + 1) continue;
      const bool covers =
          std::find(s.rules.begin(), s.rules.end(), f.rule) != s.rules.end();
      if (!covers) continue;
      if (s.has_reason) {
        f.suppressed = true;
        f.reason = s.reason;
      }
      break;
    }
  }
  // Reason-less suppressions are findings themselves — whether or not they
  // matched, a directive without a reason is a policy violation.
  for (const SuppressionDirective& s : fi.lexed.suppressions) {
    if (s.has_reason) continue;
    findings.push_back(make_finding(
        fi, Rule::kSuppression, s.line, 1,
        "suppression without a reason; write `smilint: allow(<rule>) "
        "reason=<why>`"));
  }
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.column != b.column) return a.column < b.column;
              return static_cast<int>(a.rule) < static_cast<int>(b.rule);
            });
}

std::string path_stem(const std::string& p) {
  const auto dot = p.rfind('.');
  return dot == std::string::npos ? p : p.substr(0, dot);
}

}  // namespace

// --- Public entry points -----------------------------------------------------

std::vector<Finding> analyze_source(const std::string& file,
                                    std::string_view text,
                                    std::string_view paired_header,
                                    const RulePolicy& policy) {
  SourceIndex index;
  std::map<std::string, RulePolicy> policies;
  if (!paired_header.empty()) {
    const std::string header_path = path_stem(file) + ".h";
    index.files.push_back(index_file(header_path, paired_header));
    policies[header_path] = policy;
  }
  index.files.push_back(index_file(file, text));
  policies[file] = policy;
  index.link();

  const FileIndex& fi = index.files.back();
  std::vector<Finding> findings;
  run_local_rules(fi,
                  paired_header.empty() ? nullptr : &index.files.front().lexed,
                  policy, findings);
  std::vector<Finding> cross;
  run_xfile_rules(index, policies, cross);
  for (Finding& f : cross) {
    // The single-TU contract: findings only against `text` itself.
    if (f.file == file) findings.push_back(std::move(f));
  }
  apply_suppressions(fi, findings);
  sort_findings(findings);
  return findings;
}

// --- Manifest ----------------------------------------------------------------

Manifest Manifest::parse(std::string_view text) {
  Manifest m;
  std::istringstream in{std::string(text)};
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    trim(raw);
    if (raw.empty()) continue;
    std::istringstream fields{raw};
    std::string verb, prefix, rules;
    fields >> verb >> prefix >> rules;
    auto bad = [&](const std::string& why) {
      throw std::runtime_error("smilint manifest line " +
                               std::to_string(line_no) + ": " + why);
    };
    if (prefix.empty()) bad("missing path prefix");
    Directive d;
    d.prefix = prefix;
    if (verb == "skip") {
      d.kind = Directive::Kind::kSkip;
    } else if (verb == "off") {
      d.kind = Directive::Kind::kOff;
      if (rules.empty()) bad("`off` needs a rule list");
      std::istringstream list{rules};
      std::string one;
      while (std::getline(list, one, ',')) {
        Rule rule;
        if (!parse_rule_id(one, rule)) bad("unknown rule `" + one + "`");
        d.rules.push_back(rule);
      }
    } else if (verb == "hot-path") {
      d.kind = Directive::Kind::kHotPath;
    } else if (verb == "slab") {
      d.kind = Directive::Kind::kSlab;
    } else if (verb == "concurrent") {
      d.kind = Directive::Kind::kConcurrent;
    } else {
      bad("unknown verb `" + verb + "`");
    }
    m.directives_.push_back(std::move(d));
  }
  return m;
}

Manifest Manifest::load(const std::string& path) {
  std::ifstream in{path};
  if (!in) return Manifest{};
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

namespace {
bool has_prefix(std::string_view path, std::string_view prefix) {
  return path.size() >= prefix.size() &&
         path.substr(0, prefix.size()) == prefix;
}
}  // namespace

bool Manifest::skipped(std::string_view rel_path) const {
  for (const Directive& d : directives_) {
    if (d.kind == Directive::Kind::kSkip && has_prefix(rel_path, d.prefix)) {
      return true;
    }
  }
  return false;
}

RulePolicy Manifest::policy_for(std::string_view rel_path) const {
  RulePolicy p;
  for (const Directive& d : directives_) {
    if (!has_prefix(rel_path, d.prefix)) continue;
    switch (d.kind) {
      case Directive::Kind::kSkip:
        break;
      case Directive::Kind::kOff:
        for (const Rule r : d.rules) p.set(r, false);
        break;
      case Directive::Kind::kHotPath:
        p.std_function = true;
        p.hot_path = true;
        break;
      case Directive::Kind::kSlab:
        p.raw_new_delete = false;
        break;
      case Directive::Kind::kConcurrent:
        p.concurrent = true;
        break;
    }
  }
  return p;
}

// --- Baseline ratchet --------------------------------------------------------

Baseline Baseline::parse(std::string_view text) {
  Baseline b;
  std::istringstream in{std::string(text)};
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    trim(raw);
    if (raw.empty()) continue;
    auto bad = [&](const std::string& why) {
      throw std::runtime_error("smilint baseline line " +
                               std::to_string(line_no) + ": " + why);
    };
    // Validate `file|rule|16-hex` so the baseline fails closed.
    const auto p1 = raw.find('|');
    const auto p2 = p1 == std::string::npos ? p1 : raw.find('|', p1 + 1);
    if (p1 == std::string::npos || p2 == std::string::npos ||
        raw.find('|', p2 + 1) != std::string::npos) {
      bad("expected `file|rule|hash`");
    }
    Rule rule;
    if (!parse_rule_id(raw.substr(p1 + 1, p2 - p1 - 1), rule)) {
      bad("unknown rule `" + raw.substr(p1 + 1, p2 - p1 - 1) + "`");
    }
    const std::string hex = raw.substr(p2 + 1);
    if (hex.size() != 16 ||
        hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
      bad("hash must be 16 lowercase hex digits");
    }
    b.entries_.push_back(raw);
  }
  std::sort(b.entries_.begin(), b.entries_.end());
  b.entries_.erase(std::unique(b.entries_.begin(), b.entries_.end()),
                   b.entries_.end());
  b.matched_.assign(b.entries_.size(), false);
  return b;
}

Baseline Baseline::load(const std::string& path) {
  std::ifstream in{path};
  if (!in) return Baseline{};
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

bool Baseline::contains(const std::string& fingerprint) const {
  return std::binary_search(entries_.begin(), entries_.end(), fingerprint);
}

int Baseline::size() const { return static_cast<int>(entries_.size()); }

std::vector<std::string> Baseline::unmatched() const {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!matched_[i]) out.push_back(entries_[i]);
  }
  return out;
}

void Baseline::apply(Report& report) {
  for (Finding& f : report.findings) {
    if (f.severity != Severity::kError || f.suppressed) continue;
    const std::string fp = finding_fingerprint(f);
    const auto it =
        std::lower_bound(entries_.begin(), entries_.end(), fp);
    if (it == entries_.end() || *it != fp) continue;
    f.baselined = true;
    matched_[static_cast<std::size_t>(it - entries_.begin())] = true;
  }
}

std::string Baseline::render(const Report& report) {
  std::vector<std::string> fps;
  for (const Finding& f : report.findings) {
    if (f.severity != Severity::kError || f.suppressed) continue;
    fps.push_back(finding_fingerprint(f));
  }
  std::sort(fps.begin(), fps.end());
  fps.erase(std::unique(fps.begin(), fps.end()), fps.end());
  std::string out =
      "# smilint baseline — known findings that do not gate CI.\n"
      "# One `file|rule|hash` fingerprint per line (hash = FNV-1a of the\n"
      "# whitespace-collapsed source line, so moving code keeps its entry\n"
      "# while editing the offending line invalidates it).\n"
      "# Regenerate with: smilint --write-baseline\n";
  for (const std::string& fp : fps) {
    out += fp;
    out += '\n';
  }
  return out;
}

// --- Report counts -----------------------------------------------------------

int Report::unsuppressed_count() const {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.severity == Severity::kError && !f.suppressed && !f.baselined) ++n;
  }
  return n;
}

int Report::suppressed_count() const {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.suppressed) ++n;
  }
  return n;
}

int Report::baselined_count() const {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.baselined && !f.suppressed) ++n;
  }
  return n;
}

int Report::info_count() const {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.severity == Severity::kInfo && !f.suppressed) ++n;
  }
  return n;
}

// --- Tree runner -------------------------------------------------------------

namespace {

bool cpp_source(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".h" ||
         ext == ".hpp" || ext == ".hh";
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in{p, std::ios::binary};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

Report run_tree(const std::string& root, const std::vector<std::string>& subdirs,
                const Manifest& manifest) {
  namespace fs = std::filesystem;
  Report report;
  std::vector<fs::path> paths;
  for (const std::string& sub : subdirs) {
    const fs::path dir = fs::path(root) / sub;
    if (!fs::exists(dir)) continue;
    if (fs::is_regular_file(dir)) {
      if (cpp_source(dir)) paths.push_back(dir);
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && cpp_source(entry.path())) {
        paths.push_back(entry.path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());

  // Phase 1: index every scanned TU.
  SourceIndex index;
  std::map<std::string, RulePolicy> policies;
  for (const fs::path& path : paths) {
    const std::string rel = fs::relative(path, root).generic_string();
    if (manifest.skipped(rel)) continue;
    ++report.files_scanned;
    policies[rel] = manifest.policy_for(rel);
    index.files.push_back(index_file(rel, slurp(path)));
  }
  index.link();

  // Phase 2a: per-file rules. A .cpp's stem-paired .h contributes declared
  // names; prefer the already-indexed header, fall back to disk (the header
  // may be manifest-skipped yet still declare names the .cpp touches).
  std::map<std::string, std::vector<Finding>> by_file;
  std::map<std::string, Lexed> header_fallbacks;
  for (const FileIndex& fi : index.files) {
    const std::string ext = fs::path(fi.path).extension().string();
    const Lexed* header = nullptr;
    if (ext == ".cpp" || ext == ".cc" || ext == ".cxx") {
      const std::string hpath = path_stem(fi.path) + ".h";
      if (const FileIndex* hfi = index.find(hpath)) {
        header = &hfi->lexed;
      } else {
        const fs::path disk = fs::path(root) / hpath;
        if (fs::exists(disk)) {
          header_fallbacks[hpath] = lex(slurp(disk));
          header = &header_fallbacks[hpath];
        }
      }
    }
    run_local_rules(fi, header, policies[fi.path], by_file[fi.path]);
  }

  // Phase 2b: cross-file rules over the linked index.
  std::vector<Finding> cross;
  run_xfile_rules(index, policies, cross);
  for (Finding& f : cross) by_file[f.file].push_back(std::move(f));

  // Suppressions are per-TU; S0 hygiene runs once per scanned file.
  for (const FileIndex& fi : index.files) {
    apply_suppressions(fi, by_file[fi.path]);
  }
  for (auto& [file, findings] : by_file) {
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(findings.begin()),
                           std::make_move_iterator(findings.end()));
  }
  sort_findings(report.findings);
  return report;
}

// --- Reporting ---------------------------------------------------------------

namespace {
void json_escape(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}
}  // namespace

std::string to_json(const Report& report) {
  std::string out = "{\n  \"files_scanned\": " +
                    std::to_string(report.files_scanned) +
                    ",\n  \"unsuppressed\": " +
                    std::to_string(report.unsuppressed_count()) +
                    ",\n  \"suppressed\": " +
                    std::to_string(report.suppressed_count()) +
                    ",\n  \"baselined\": " +
                    std::to_string(report.baselined_count()) +
                    ",\n  \"info\": " + std::to_string(report.info_count()) +
                    ",\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : report.findings) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"file\": \"";
    json_escape(out, f.file);
    out += "\", \"line\": " + std::to_string(f.line) +
           ", \"column\": " + std::to_string(f.column) + ", \"rule\": \"";
    out += rule_id(f.rule);
    out += "\", \"code\": \"";
    out += rule_code(f.rule);
    out += "\", \"severity\": \"";
    out += f.severity == Severity::kInfo ? "info" : "error";
    out += "\", \"suppressed\": ";
    out += f.suppressed ? "true" : "false";
    out += ", \"baselined\": ";
    out += f.baselined ? "true" : "false";
    out += ", \"message\": \"";
    json_escape(out, f.message);
    out += "\", \"snippet\": \"";
    json_escape(out, f.snippet);
    if (f.suppressed) {
      out += "\", \"reason\": \"";
      json_escape(out, f.reason);
    }
    out += "\"}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string to_sarif(const Report& report) {
  std::string out =
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"smilint\",\n"
      "          \"informationUri\": "
      "\"https://example.invalid/smilab/tools/smilint\",\n"
      "          \"rules\": [";
  for (int i = 0; i < kRuleCount; ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "            {\"id\": \"";
    out += kRuleIds[i];
    out += "\", \"name\": \"";
    out += kRuleCodes[i];
    out += "\", \"shortDescription\": {\"text\": \"";
    json_escape(out, kRuleDescriptions[i]);
    out += "\"}}";
  }
  out +=
      "\n          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [";
  bool first = true;
  for (const Finding& f : report.findings) {
    out += first ? "\n" : ",\n";
    first = false;
    const bool gates =
        f.severity == Severity::kError && !f.suppressed && !f.baselined;
    out += "        {\"ruleId\": \"";
    out += rule_id(f.rule);
    out += "\", \"ruleIndex\": " + std::to_string(static_cast<int>(f.rule));
    out += ", \"level\": \"";
    out += gates ? "error" : "note";
    out += "\", \"message\": {\"text\": \"";
    json_escape(out, f.message);
    out += "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"";
    json_escape(out, f.file);
    out += "\"}, \"region\": {\"startLine\": " + std::to_string(f.line) +
           ", \"startColumn\": " + std::to_string(f.column) +
           ", \"snippet\": {\"text\": \"";
    json_escape(out, f.snippet);
    out += "\"}}}}]";
    if (f.suppressed) {
      out += ", \"suppressions\": [{\"kind\": \"inSource\", "
             "\"justification\": \"";
      json_escape(out, f.reason);
      out += "\"}]";
    } else if (f.baselined) {
      out += ", \"suppressions\": [{\"kind\": \"external\", "
             "\"justification\": \"baselined in "
             "tools/smilint/smilint.baseline\"}]";
    }
    out += "}";
  }
  out += first ? "]\n" : "\n      ]\n";
  out +=
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

void print_text(std::ostream& os, const Report& report, bool show_suppressed) {
  for (const Finding& f : report.findings) {
    if (f.suppressed && !show_suppressed) continue;
    os << f.file << ":" << f.line << ":" << f.column << ": ["
       << rule_code(f.rule) << " " << rule_id(f.rule) << "] " << f.message;
    if (f.suppressed) os << " (suppressed: " << f.reason << ")";
    if (f.baselined) os << " (baselined)";
    if (f.severity == Severity::kInfo) os << " (info)";
    os << "\n";
    if (!f.snippet.empty()) os << "    | " << f.snippet << "\n";
  }
  os << report.files_scanned << " files scanned, "
     << report.unsuppressed_count() << " violation(s), "
     << report.suppressed_count() << " suppressed, "
     << report.baselined_count() << " baselined, " << report.info_count()
     << " info\n";
}

}  // namespace smilint
