// The smilab command-line tool. All logic lives in smilab/cli so it can be
// unit-tested; this file is just the process entry point.
//
//   smilab help
//   smilab nas --workload=ft --class=A --nodes=8 --smi=long
//   smilab convolve --case=cu --cpus=8 --gap-ms=50
//   smilab detect --smi=long --gap-ms=1000 --trace=run.json
//   smilab faults --nodes=4 --drop=0.05 --crash=2:500
//
// Exit codes: 0 success, 2 usage error, 3 simulation fault. run_cli already
// maps SimulationError to 3; the handlers here are a backstop so nothing
// escapes as std::terminate.
#include <exception>
#include <iostream>

#include "smilab/cli/commands.h"
#include "smilab/sim/run_result.h"

int main(int argc, char** argv) {
  try {
    return smilab::run_cli(argc, argv, std::cout, std::cerr);
  } catch (const smilab::SimulationError& e) {
    std::cerr << "smilab: simulation fault ("
              << smilab::to_string(e.status()) << ")\n"
              << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "smilab: fatal: " << e.what() << "\n";
    return 1;
  }
}
