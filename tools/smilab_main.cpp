// The smilab command-line tool. All logic lives in smilab/cli so it can be
// unit-tested; this file is just the process entry point.
//
//   smilab help
//   smilab nas --workload=ft --class=A --nodes=8 --smi=long
//   smilab convolve --case=cu --cpus=8 --gap-ms=50
//   smilab detect --smi=long --gap-ms=1000 --trace=run.json
#include <iostream>

#include "smilab/cli/commands.h"

int main(int argc, char** argv) {
  return smilab::run_cli(argc, argv, std::cout, std::cerr);
}
